#include "core/trial.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "exec/parallel_map.hpp"
#include "core/ben_or.hpp"
#include "core/byz_register.hpp"
#include "core/hbo.hpp"
#include "core/tags.hpp"
#include "core/omega.hpp"
#include "core/omega_mp.hpp"
#include "core/sm_consensus.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "runtime/sim_runtime.hpp"

namespace mm::core {

using runtime::SimConfig;
using runtime::SimRuntime;


const char* to_string(Algo algo) noexcept {
  switch (algo) {
    case Algo::kHbo: return "hbo";
    case Algo::kBenOr: return "ben-or";
    case Algo::kSmConsensus: return "sm";
  }
  return "?";
}

const char* to_string(OmegaAlgo algo) noexcept {
  switch (algo) {
    case OmegaAlgo::kMnmReliable: return "mnm-reliable";
    case OmegaAlgo::kMnmFairLossy: return "mnm-fairlossy";
    case OmegaAlgo::kMessagePassing: return "mp-heartbeat";
  }
  return "?";
}

namespace {

/// Pick the f-subset of processes to crash.
std::vector<bool> pick_crash_set(const ConsensusTrialConfig& cfg, Rng& rng) {
  const std::size_t n = cfg.gsm.size();
  std::vector<bool> crashed(n, false);
  if (cfg.crash_pick == CrashPick::kTargeted) {
    for (std::size_t p = 0; p < n && p < 64; ++p)
      crashed[p] = ((cfg.targeted_crash_mask >> p) & 1ULL) != 0;
    return crashed;
  }
  if (cfg.f == 0 || cfg.crash_pick == CrashPick::kNone) return crashed;
  MM_ASSERT_MSG(cfg.f < n, "cannot crash every process");

  if (cfg.crash_pick == CrashPick::kWorstCase && n <= graph::kExactExpansionMaxN) {
    // Crash the complement of the correct set that minimises representation:
    // the adversary Theorem 4.3 quantifies over.
    const auto worst = graph::min_represented_exact(cfg.gsm, n - cfg.f);
    for (std::size_t p = 0; p < n; ++p)
      crashed[p] = ((worst.witness >> p) & 1ULL) == 0;
    return crashed;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  shuffle(order.begin(), order.end(), rng);
  for (std::size_t i = 0; i < cfg.f; ++i) crashed[order[i]] = true;
  return crashed;
}

}  // namespace

ConsensusTrialResult run_consensus_trial(const ConsensusTrialConfig& cfg) {
  const std::size_t n = cfg.gsm.size();
  MM_ASSERT(n >= 1);
  Rng rng{cfg.seed ^ 0x7ad870c830358979ULL};

  // Inputs.
  std::vector<std::uint32_t> inputs;
  if (cfg.inputs.has_value()) {
    MM_ASSERT_MSG(cfg.inputs->size() == n, "inputs arity");
    inputs = *cfg.inputs;
  } else {
    inputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) inputs.push_back(rng.coin() ? 1 : 0);
  }

  // Adversary: crash set and crash times.
  const std::vector<bool> crash_set = pick_crash_set(cfg, rng);

  SimConfig sim;
  sim.gsm = cfg.gsm;
  sim.seed = cfg.seed;
  sim.link_type = runtime::LinkType::kReliable;
  sim.min_delay = cfg.min_delay;
  sim.max_delay = cfg.max_delay;
  sim.partition = cfg.partition;
  sim.backend = cfg.backend;
  sim.crash_at.assign(n, std::nullopt);
  for (std::size_t p = 0; p < n; ++p)
    if (crash_set[p]) sim.crash_at[p] = rng.between(0, cfg.crash_window);

  SimRuntime rt{std::move(sim)};
  if (cfg.injector != nullptr) rt.set_fault_injector(cfg.injector);

  std::vector<std::unique_ptr<HboConsensus>> hbos;
  std::vector<std::unique_ptr<BenOrConsensus>> benors;
  std::vector<std::unique_ptr<SmConsensus>> sms;

  for (std::size_t p = 0; p < n; ++p) {
    switch (cfg.algo) {
      case Algo::kHbo: {
        HboConsensus::Config hc;
        hc.gsm = &cfg.gsm;
        hc.impl = cfg.impl;
        hc.max_rounds = cfg.max_rounds;
        hbos.push_back(std::make_unique<HboConsensus>(hc, inputs[p]));
        rt.add_process([alg = hbos.back().get()](runtime::Env& env) { alg->run(env); });
        break;
      }
      case Algo::kBenOr: {
        BenOrConsensus::Config bc;
        bc.f = cfg.ben_or_quorum_f.value_or((n - 1) / 2);
        bc.max_rounds = cfg.max_rounds;
        benors.push_back(std::make_unique<BenOrConsensus>(bc, inputs[p]));
        rt.add_process([alg = benors.back().get()](runtime::Env& env) { alg->run(env); });
        break;
      }
      case Algo::kSmConsensus: {
        SmConsensus::Config sc;
        sc.impl = cfg.impl;
        sms.push_back(std::make_unique<SmConsensus>(sc, inputs[p]));
        rt.add_process([alg = sms.back().get()](runtime::Env& env) { alg->run(env); });
        break;
      }
    }
  }

  rt.run_until_all_done(cfg.budget);
  rt.shutdown();
  rt.rethrow_process_error();

  auto decision_of = [&](std::size_t p) -> int {
    switch (cfg.algo) {
      case Algo::kHbo: return hbos[p]->decision();
      case Algo::kBenOr: return benors[p]->decision();
      case Algo::kSmConsensus: return sms[p]->decision();
    }
    return -1;
  };
  auto round_of = [&](std::size_t p) -> std::uint64_t {
    switch (cfg.algo) {
      case Algo::kHbo: return hbos[p]->decided_round();
      case Algo::kBenOr: return benors[p]->decided_round();
      case Algo::kSmConsensus: return 1;
    }
    return 0;
  };

  ConsensusTrialResult res;
  res.crashed = crash_set;
  res.steps_used = rt.now();
  res.msgs_sent = rt.metrics().msgs_sent;
  res.reg_ops = rt.metrics().reg_reads + rt.metrics().reg_writes + rt.metrics().reg_cas_ops;

  // Uniform Agreement + Validity, over every decision including those of
  // processes that crashed after deciding.
  bool all_correct_decided = true;
  for (std::size_t p = 0; p < n; ++p) {
    const int d = decision_of(p);
    const bool correct = !rt.crashed(Pid{static_cast<std::uint32_t>(p)});
    if (d >= 0) {
      const auto dv = static_cast<std::uint32_t>(d);
      if (res.decision.has_value() && *res.decision != dv) res.agreement = false;
      if (!res.decision.has_value()) res.decision = dv;
      if (std::find(inputs.begin(), inputs.end(), dv) == inputs.end()) res.validity = false;
      res.max_decided_round = std::max(res.max_decided_round, round_of(p));
    } else if (correct) {
      all_correct_decided = false;
    }
  }
  res.all_correct_decided = all_correct_decided && res.decision.has_value();
  return res;
}

TerminationSweep sweep_termination(ConsensusTrialConfig cfg, std::uint64_t trials) {
  // Trials are independent seeded runs (seeds cfg.seed, cfg.seed+1, ... per
  // the header contract), so they fan out across the worker pool; the
  // reduction below consumes results in seed order, which keeps every
  // aggregate — including the floating-point sums — bit-identical to the
  // sequential loop (and to MM_JOBS=1).
  MM_ASSERT_MSG(cfg.injector == nullptr,
                "sweeps share the config across parallel trials; a stateful injector "
                "must be built per seed, not passed here");
  const std::uint64_t base_seed = cfg.seed;
  const auto results = exec::parallel_map(trials, [&cfg, base_seed](std::uint64_t t) {
    ConsensusTrialConfig c = cfg;
    c.seed = base_seed + t;
    return run_consensus_trial(c);
  });

  TerminationSweep sweep;
  std::uint64_t terminated = 0;
  double rounds = 0.0;
  double steps = 0.0;
  for (const ConsensusTrialResult& res : results) {
    if (!res.agreement || !res.validity) ++sweep.safety_violations;
    if (res.all_correct_decided) {
      ++terminated;
      rounds += static_cast<double>(res.max_decided_round);
      steps += static_cast<double>(res.steps_used);
    }
  }
  sweep.termination_rate = trials ? static_cast<double>(terminated) / static_cast<double>(trials) : 0.0;
  if (terminated > 0) {
    sweep.mean_decided_round = rounds / static_cast<double>(terminated);
    sweep.mean_steps = steps / static_cast<double>(terminated);
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// Byzantine register trials (E20)
// ---------------------------------------------------------------------------

namespace {

/// Harness-global completion flag, one per process (slot 1 keeps it disjoint
/// from the ByzRegister pair registers, which use slot 0 and no global bit).
runtime::RegKey byz_done_key(Pid p) {
  return runtime::RegKey::make_global(kTagByzReg, p, 0, 1);
}

}  // namespace

ByzRegisterTrialResult run_byz_register_trial(const ByzRegisterTrialConfig& cfg) {
  const std::size_t n = cfg.gsm.size();
  MM_ASSERT(n >= 2);
  const Pid writer{0};

  // Resilience-bound validation, mirroring SimConfig::validate's style: a
  // mis-parameterised register instance is a config error, not a finding.
  const bool bracha_ok = n > 3 * cfg.f;
  if (!cfg.use_gsm && !bracha_ok) {
    throw runtime::ConfigError{
        "byz_register (message mode) requires n > 3f: n = " + std::to_string(n) +
        ", f = " + std::to_string(cfg.f)};
  }
  if (cfg.use_gsm) {
    if (n <= 2 * cfg.f) {
      throw runtime::ConfigError{
          "byz_register (hybrid mode) requires n > 2f: n = " + std::to_string(n) +
          ", f = " + std::to_string(cfg.f)};
    }
    if (!bracha_ok) {
      for (std::size_t q = 1; q < n; ++q) {
        if (!cfg.gsm.has_edge(writer, Pid{static_cast<std::uint32_t>(q)})) {
          throw runtime::ConfigError{
              "byz_register (hybrid mode) with f >= n/3 disables the Bracha "
              "channel, so the writer must neighbor every process; p" +
              std::to_string(q) + " is outside the writer's GSM neighborhood"};
        }
      }
    }
  }

  SimConfig sim;
  sim.gsm = cfg.gsm;
  sim.seed = cfg.seed;
  sim.min_delay = cfg.min_delay;
  sim.max_delay = cfg.max_delay;
  sim.backend = cfg.backend;
  sim.crash_at = cfg.crash_at;
  sim.byzantine = cfg.byzantine;  // validate() rejects crash-plan overlap

  SimRuntime rt{std::move(sim)};
  if (cfg.injector != nullptr) rt.set_fault_injector(cfg.injector);

  ByzRegisterTrialResult res;
  res.written.reserve(cfg.writes);
  for (std::size_t w = 1; w <= cfg.writes; ++w) res.written.push_back(w);
  res.histories.resize(n);

  std::vector<std::unique_ptr<ByzRegister>> regs;
  regs.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    ByzRegister::Config bc;
    bc.f = cfg.f;
    bc.writer = writer;
    bc.tag = 1;
    bc.use_gsm = cfg.use_gsm;
    bc.gsm = &cfg.gsm;
    regs.push_back(std::make_unique<ByzRegister>(bc));
    rt.add_process([p, &cfg, reg = regs.back().get(),
                    hist = &res.histories[p]](runtime::Env& env) {
      if (p == 0) {
        for (std::size_t w = 1; w <= cfg.writes; ++w) {
          const Step invoked = env.now();
          if (!reg->write(env, w)) return;
          hist->record_write(w, invoked, env.now(), env.self());
        }
      }
      for (std::size_t r = 0; r < cfg.reads_per_proc; ++r) {
        const Step invoked = env.now();
        const auto v = reg->read(env);
        if (!v.has_value()) return;
        hist->record_read(*v, invoked, env.now(), env.self());
      }
      env.write(env.reg(byz_done_key(env.self())), 1);
      // Stay alive as a server: other processes' reads need our rows/acks.
      while (!env.stop_requested()) {
        reg->pump(env);
        env.step();
      }
    });
  }

  // Drive until every correct process published its completion flag (a
  // Byzantine process's own operations have no liveness guarantee — its
  // traffic is being corrupted — so it is excluded like a crashed one).
  while (rt.now() < cfg.budget && !res.completed) {
    rt.run_steps(2'000);
    rt.rethrow_process_error();
    bool all = true;
    for (std::size_t p = 0; p < n; ++p) {
      const Pid pid{static_cast<std::uint32_t>(p)};
      if (rt.crashed(pid)) continue;
      if (!cfg.byzantine.empty() && cfg.byzantine[p] != 0) continue;
      if (rt.register_value(byz_done_key(pid)).value_or(0) == 0) {
        all = false;
        break;
      }
    }
    res.completed = all;
  }
  res.steps_used = rt.now();
  res.crashed.resize(n);
  for (std::size_t p = 0; p < n; ++p)
    res.crashed[p] = rt.crashed(Pid{static_cast<std::uint32_t>(p)});
  rt.shutdown();
  rt.rethrow_process_error();

  res.adopted.reserve(n);
  for (std::size_t p = 0; p < n; ++p) res.adopted.push_back(regs[p]->adopted_log());
  return res;
}

// ---------------------------------------------------------------------------
// Ω trials
// ---------------------------------------------------------------------------

OmegaTrialResult run_omega_trial(const OmegaTrialConfig& cfg) {
  const std::size_t n = cfg.n;
  MM_ASSERT(n >= 2);

  SimConfig sim;
  sim.gsm = graph::complete(n);  // §5 assumes a complete GSM
  sim.seed = cfg.seed;
  sim.link_type = cfg.algo == OmegaAlgo::kMnmFairLossy ? runtime::LinkType::kFairLossy
                                                       : runtime::LinkType::kReliable;
  sim.drop_prob = cfg.algo == OmegaAlgo::kMnmFairLossy ? cfg.drop_prob : 0.0;
  sim.min_delay = cfg.min_delay;
  sim.max_delay = cfg.max_delay;
  sim.timely = cfg.timely;
  sim.timely_bound = cfg.timely_bound;
  sim.backend = cfg.backend;
  if (cfg.slow_weight != 1.0) {
    sim.sched_weight.assign(n, cfg.slow_weight);
    sim.sched_weight[cfg.timely.index()] = 1.0;
  }

  SimRuntime rt{std::move(sim)};
  if (cfg.injector != nullptr) rt.set_fault_injector(cfg.injector);

  std::vector<std::unique_ptr<OmegaMM>> mnms;
  std::vector<std::unique_ptr<OmegaMP>> mps;
  for (std::size_t p = 0; p < n; ++p) {
    if (cfg.algo == OmegaAlgo::kMessagePassing) {
      mps.push_back(std::make_unique<OmegaMP>(OmegaMP::Config{}));
      rt.add_process([alg = mps.back().get()](runtime::Env& env) { alg->run(env); });
    } else {
      OmegaMM::Config oc;
      oc.mech = cfg.algo == OmegaAlgo::kMnmReliable ? OmegaMM::NotifyMech::kMessage
                                                    : OmegaMM::NotifyMech::kRegister;
      mnms.push_back(std::make_unique<OmegaMM>(oc));
      rt.add_process([alg = mnms.back().get()](runtime::Env& env) { alg->run(env); });
    }
  }

  auto leader_of = [&](std::size_t p) -> Pid {
    return cfg.algo == OmegaAlgo::kMessagePassing ? mps[p]->leader() : mnms[p]->leader();
  };

  OmegaTrialResult res;
  bool crashed_done = cfg.crash_leader_at == 0;
  Pid crashed_pid = Pid::none();
  int streak = 0;
  Step streak_start = 0;
  bool measured_precrash = false;

  while (rt.now() < cfg.budget) {
    rt.run_steps(cfg.check_every);
    rt.rethrow_process_error();

    // Crash injection: take down the currently agreed leader.
    if (!crashed_done && rt.now() >= cfg.crash_leader_at) {
      Pid victim = leader_of(cfg.timely.index());
      if (victim.is_none() || victim.index() >= n || victim == cfg.timely) victim = Pid{0};
      if (victim == cfg.timely) victim = Pid{1};  // never crash the timely process
      rt.crash_now(victim);
      crashed_pid = victim;
      crashed_done = true;
      streak = 0;
      measured_precrash = true;
    }

    // Agreement check: every non-crashed process outputs the same correct pid.
    Pid agreed = Pid::none();
    bool all_agree = true;
    for (std::size_t p = 0; p < n; ++p) {
      if (rt.crashed(Pid{static_cast<std::uint32_t>(p)})) continue;
      const Pid l = leader_of(p);
      if (l.is_none() || l == crashed_pid) {
        all_agree = false;
        break;
      }
      if (agreed.is_none()) agreed = l;
      if (l != agreed) {
        all_agree = false;
        break;
      }
    }
    if (all_agree && !agreed.is_none()) {
      if (streak == 0) streak_start = rt.now();
      ++streak;
      if (streak >= cfg.stable_checks && crashed_done) {
        res.stabilized = true;
        res.final_leader = agreed;
        res.stabilization_step = streak_start;
        res.failover_step = measured_precrash && cfg.crash_leader_at > 0
                                ? streak_start - cfg.crash_leader_at
                                : streak_start;
        break;
      }
    } else {
      streak = 0;
    }
  }

  if (!res.stabilized) {
    rt.shutdown();
    return res;
  }

  // Steady-state measurement window (Theorems 5.1/5.2 observables).
  const runtime::Metrics before = rt.metrics();
  const Step window = cfg.check_every * 20;
  rt.run_steps(window);
  const runtime::Metrics delta = rt.metrics().delta_since(before);
  rt.shutdown();

  const double per_1k = 1000.0 / static_cast<double>(window);
  const std::size_t lead = res.final_leader.index();
  res.steady_msgs_per_1k = static_cast<double>(delta.msgs_sent) * per_1k;
  res.leader_writes_per_1k = static_cast<double>(delta.writes_by_proc[lead]) * per_1k;
  res.leader_reads_per_1k = static_cast<double>(delta.reads_by_proc[lead]) * per_1k;
  res.leader_remote_per_1k =
      static_cast<double>(delta.remote_reads_by_proc[lead] + delta.remote_writes_by_proc[lead]) *
      per_1k;
  double ow = 0.0, orr = 0.0;
  std::size_t others = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (p == lead || (p == crashed_pid.index() && !crashed_pid.is_none())) continue;
    ow += static_cast<double>(delta.writes_by_proc[p]);
    orr += static_cast<double>(delta.reads_by_proc[p]);
    ++others;
  }
  if (others > 0) {
    res.others_writes_per_1k = ow * per_1k / static_cast<double>(others);
    res.others_reads_per_1k = orr * per_1k / static_cast<double>(others);
  }
  return res;
}

std::vector<OmegaTrialResult> run_omega_trials(const OmegaTrialConfig& cfg,
                                               const std::vector<std::uint64_t>& seeds) {
  MM_ASSERT_MSG(cfg.injector == nullptr,
                "sweeps share the config across parallel trials; a stateful injector "
                "must be built per seed, not passed here");
  return exec::parallel_map(seeds.size(), [&cfg, &seeds](std::uint64_t i) {
    OmegaTrialConfig c = cfg;
    c.seed = seeds[i];
    return run_omega_trial(c);
  });
}

}  // namespace mm::core
