#include "core/bracha.hpp"

#include "common/assert.hpp"
#include "core/tags.hpp"
#include "net/broadcast.hpp"

namespace mm::core {

using runtime::Env;
using runtime::Message;

namespace {
// Message.round = (tag << 8) | subkind; Message.value = payload;
// Message.aux = sender pid of the broadcast instance.
enum Subkind : std::uint64_t { kInitial = 1, kEcho = 2, kReady = 3 };
}  // namespace

void BrachaBroadcast::send_phase(Env& env, std::uint64_t subkind, std::uint64_t value) {
  Message m;
  m.kind = kMsgBracha;
  m.round = (config_.tag << 8) | subkind;
  m.value = value;
  m.aux = config_.sender.value();
  net::send_to_all(env, m);
}

void BrachaBroadcast::broadcast(Env& env, std::uint64_t value) {
  MM_ASSERT_MSG(env.self() == config_.sender, "only the designated sender broadcasts");
  MM_ASSERT_MSG(env.n() > 3 * config_.f, "Bracha requires n > 3f");
  send_phase(env, kInitial, value);
}

std::optional<std::uint64_t> BrachaBroadcast::on_message(Env& env, const Message& m) {
  if (m.kind != kMsgBracha) return std::nullopt;
  if ((m.round >> 8) != config_.tag || m.aux != config_.sender.value()) return std::nullopt;
  const std::size_t n = env.n();
  const std::size_t echo_quorum = (n + config_.f + 2) / 2;  // ⌈(n+f+1)/2⌉
  const std::size_t ready_amplify = config_.f + 1;
  const std::size_t deliver_quorum = 2 * config_.f + 1;

  switch (m.round & 0xff) {
    case kInitial:
      // Echo only the designated sender's INITIAL (a forged INITIAL from
      // someone else is ignored above via the aux check... but any process
      // can LIE in aux; the real protection is that the INITIAL must come
      // FROM the sender itself:
      if (m.from != config_.sender) break;
      if (!echoed_) {
        echoed_ = true;
        send_phase(env, kEcho, m.value);
      }
      break;
    case kEcho: {
      auto& senders = echoes_[m.value];
      senders.insert(m.from);
      if (!readied_ && senders.size() >= echo_quorum) {
        readied_ = true;
        send_phase(env, kReady, m.value);
      }
      break;
    }
    case kReady: {
      auto& senders = readies_[m.value];
      senders.insert(m.from);
      if (!readied_ && senders.size() >= ready_amplify) {
        readied_ = true;
        send_phase(env, kReady, m.value);
      }
      if (!delivered_.has_value() && senders.size() >= deliver_quorum) {
        delivered_ = m.value;
        return delivered_;
      }
      break;
    }
    default:
      break;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> BrachaBroadcast::pump(Env& env, std::vector<Message>* foreign) {
  std::optional<std::uint64_t> out;
  env.drain_inbox(drain_scratch_);
  for (auto& m : drain_scratch_) {
    const auto got = on_message(env, m);
    if (got.has_value() && !out.has_value()) out = got;
    if (m.kind != kMsgBracha && foreign != nullptr) foreign->push_back(std::move(m));
  }
  return out;
}

std::optional<std::uint64_t> BrachaBroadcast::await_delivery(Env& env) {
  while (!delivered_.has_value()) {
    (void)pump(env);
    if (delivered_.has_value()) break;
    if (env.stop_requested()) return std::nullopt;
    env.step();
  }
  return delivered_;
}

}  // namespace mm::core
