#include "core/abd.hpp"

#include "common/assert.hpp"
#include "core/tags.hpp"
#include "net/broadcast.hpp"

namespace mm::core {

using runtime::Env;
using runtime::Message;

namespace {

// Message.round: [origin pid : 16][reg id : 8][seq : 39][is_reply : 1].
std::uint64_t op_id(Pid origin, std::uint32_t reg_id, std::uint64_t seq) {
  MM_ASSERT(seq < (1ULL << 39));
  return (static_cast<std::uint64_t>(origin.value() & 0xffff) << 48) |
         (static_cast<std::uint64_t>(reg_id & 0xff) << 40) | (seq << 1);
}

}  // namespace

void AbdRegister::handle(Env& env, const Message& m) {
  if (m.kind != kMsgAbdRead && m.kind != kMsgAbdWrite) return;
  // Ignore traffic for other ABD registers.
  if (((m.round >> 40) & 0xff) != (config_.reg_id & 0xff)) return;
  const bool is_reply = (m.round & 1) != 0;

  if (!is_reply) {
    // Serve the request against the local replica, then echo the op id.
    Message reply;
    reply.kind = m.kind;
    reply.round = m.round | 1;
    if (m.kind == kMsgAbdWrite) {
      if (m.value > local_.ts) {
        local_.ts = m.value;
        local_.value = m.aux;
      }
    } else {
      reply.value = local_.ts;
      reply.aux = local_.value;
    }
    env.send(m.from, reply);
    ++stats_.msgs_sent;
    return;
  }

  // A reply: only the phase that issued the op consumes it. The op id is
  // the request round (reply bit clear).
  if ((m.round & ~1ULL) != active_op_ || replied_.empty()) return;
  if (replied_[m.from.index()]) return;
  replied_[m.from.index()] = true;
  ++replies_;
  if (m.kind == kMsgAbdRead && m.value > best_.ts) {
    best_.ts = m.value;
    best_.value = m.aux;
  }
}

void AbdRegister::join_group(std::vector<AbdRegister*> group) {
  group_ = std::move(group);
}

void AbdRegister::serve(Env& env) {
  env.drain_inbox(drain_scratch_);
  for (const Message& m : drain_scratch_) {
    if (group_.empty()) {
      handle(env, m);
    } else {
      // Route to the sibling the message belongs to (each handle() filters
      // on its own reg id, so fan-out is safe with distinct ids).
      for (AbdRegister* reg : group_) reg->handle(env, m);
    }
  }
}

std::optional<AbdRegister::Tagged> AbdRegister::run_phase(Env& env, bool store,
                                                          Tagged payload) {
  const std::size_t n = env.n();
  const std::size_t majority = n / 2 + 1;
  ++seq_;
  active_op_ = op_id(env.self(), config_.reg_id, seq_);
  replied_.assign(n, false);
  replies_ = 0;
  best_ = store ? payload : Tagged{};

  Message req;
  req.kind = store ? kMsgAbdWrite : kMsgAbdRead;
  req.round = active_op_;  // is_reply bit clear
  req.value = payload.ts;
  req.aux = payload.value;
  net::send_to_all(env, req);  // includes self: our replica serves too
  stats_.msgs_sent += n;

  while (replies_ < majority) {
    serve(env);
    if (replies_ >= majority) break;
    if (env.stop_requested()) {
      active_op_ = 0;
      return std::nullopt;
    }
    env.step();
  }
  active_op_ = 0;
  return best_;
}

bool AbdRegister::write(Env& env, std::uint64_t value) {
  MM_ASSERT_MSG(env.self() == config_.writer, "single-writer register");
  const Tagged stamped{++writer_ts_, value};
  const auto done = run_phase(env, /*store=*/true, stamped);
  if (!done.has_value()) return false;
  ++stats_.ops;
  return true;
}

std::optional<std::uint64_t> AbdRegister::read(Env& env) {
  const auto current = run_phase(env, /*store=*/false, Tagged{});
  if (!current.has_value()) return std::nullopt;
  // Write-back: make the read's value visible to a majority before
  // returning, so no later read can observe an older value (atomicity).
  const auto confirmed = run_phase(env, /*store=*/true, *current);
  if (!confirmed.has_value()) return std::nullopt;
  ++stats_.ops;
  return current->value;
}

}  // namespace mm::core
