#include "core/byz_register.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/tags.hpp"
#include "net/broadcast.hpp"

namespace mm::core {

using runtime::Env;
using runtime::Message;
using runtime::RegKey;

namespace {

// Message.round = (tag << 8) | subkind for the register's own traffic; the
// per-ts Bracha instances use tag (instance_tag << 24) | ts, so their
// traffic (round = (bracha_tag << 8) | phase) routes by round >> 32.
enum Subkind : std::uint64_t {
  kAckW = 1,     ///< aux = ts
  kRead = 2,     ///< aux = rsn
  kState = 3,    ///< aux = (rsn << 32) | ts, value = v
  kConfirm = 4,  ///< aux = (rsn << 32) | ts, value = v
  kAckR = 5,     ///< aux = (rsn << 32) | ts
};

constexpr std::uint32_t kMaxTs = (1u << 24) - 1;

std::uint64_t pack_pair(ByzRegister::Pair p) {
  return (static_cast<std::uint64_t>(p.ts) << 32) | (p.v & 0xFFFF'FFFFULL);
}

ByzRegister::Pair unpack_pair(std::uint64_t bits) {
  return {static_cast<std::uint32_t>(bits >> 32), bits & 0xFFFF'FFFFULL};
}

RegKey pair_key(std::uint64_t tag, Pid owner) {
  return RegKey::make(kTagByzReg, owner, tag, 0);
}

}  // namespace

ByzRegister::ByzRegister(Config config) : config_(config) {
  MM_ASSERT_MSG(config_.tag != 0 && config_.tag <= 0xFFFF'FFFFULL >> 8,
                "instance tag must be nonzero and fit 24 bits");
  MM_ASSERT_MSG(!config_.use_gsm || config_.gsm != nullptr,
                "hybrid mode needs the GSM to know whose registers are readable");
}

bool ByzRegister::use_bracha() const noexcept {
  // Hybrid instances keep the Bracha channel only while its own n > 3f
  // precondition holds; past that the writer's register is the sole adoption
  // channel (the trial validates that the writer then neighbors everyone).
  return !config_.use_gsm || config_.gsm == nullptr ||
         config_.gsm->size() > 3 * config_.f;
}

std::uint64_t ByzRegister::bracha_tag(std::uint32_t ts) const noexcept {
  return (config_.tag << 24) | ts;
}

BrachaBroadcast& ByzRegister::bracha_for(std::uint32_t ts) {
  auto it = rb_.find(ts);
  if (it == rb_.end()) {
    BrachaBroadcast::Config bc;
    bc.f = config_.f;
    bc.sender = config_.writer;
    bc.tag = bracha_tag(ts);
    it = rb_.emplace(ts, BrachaBroadcast{bc}).first;
  }
  return it->second;
}

void ByzRegister::publish(Env& env) {
  if (!config_.use_gsm) return;
  runtime::write_key(env, pair_key(config_.tag, env.self()), pack_pair(cur_));
}

void ByzRegister::send_state(Env& env, Pid reader, std::uint64_t rsn) {
  Message m;
  m.kind = kMsgByzReg;
  m.round = (config_.tag << 8) | kState;
  m.aux = (rsn << 32) | cur_.ts;
  m.value = cur_.v;
  env.send(reader, m);
}

void ByzRegister::adopt(Env& env, Pair p) {
  adopted_log_.emplace(p.ts, p.v);  // first adoption per ts is the logged one
  // Acknowledge every adoption to the writer, stale or not — the writer
  // ignores timestamps it is not currently waiting on.
  Message ack;
  ack.kind = kMsgByzReg;
  ack.round = (config_.tag << 8) | kAckW;
  ack.aux = p.ts;
  env.send(config_.writer, ack);

  if (p.ts <= cur_.ts) return;
  cur_ = p;
  publish(env);
  // Open reads get a fresh row: rows at correct servers converge to the max
  // adopted pair, which is what makes the reader's anchor condition live.
  for (const auto& [reader, rsn] : open_reads_) send_state(env, reader, rsn);
  // Confirms waiting for this timestamp can now be acknowledged.
  auto it = pending_confirms_.begin();
  while (it != pending_confirms_.end()) {
    if (it->pair.ts <= cur_.ts) {
      Message m;
      m.kind = kMsgByzReg;
      m.round = (config_.tag << 8) | kAckR;
      m.aux = (it->rsn << 32) | it->pair.ts;
      env.send(it->reader, m);
      it = pending_confirms_.erase(it);
    } else {
      ++it;
    }
  }
}

void ByzRegister::poll_gsm(Env& env) {
  if (!config_.use_gsm) return;
  // Trusted adoption channel: the writer's own register. Its publishing code
  // is honest even when the writer is marked Byzantine at the message level;
  // only a register-corrupting adversary (kByzCorruptWrites) breaks this —
  // the collapse edge of the resilience frontier.
  const Pid self = env.self();
  if (self != config_.writer && config_.gsm->has_edge(self, config_.writer)) {
    const std::uint64_t bits =
        runtime::read_key(env, pair_key(config_.tag, config_.writer));
    if (bits != 0) {
      const Pair p = unpack_pair(bits);
      if (p.ts > cur_.ts) adopt(env, p);
    }
  }
}

void ByzRegister::handle(Env& env, const Message& m) {
  if (m.kind == kMsgBracha) {
    const std::uint64_t btag = m.round >> 8;
    if ((btag >> 24) != config_.tag) return;
    if (!use_bracha()) return;
    const auto ts = static_cast<std::uint32_t>(btag & kMaxTs);
    const auto delivered = bracha_for(ts).on_message(env, m);
    if (delivered.has_value()) adopt(env, Pair{ts, *delivered});
    return;
  }
  if (m.kind != kMsgByzReg || (m.round >> 8) != config_.tag) return;

  switch (m.round & 0xff) {
    case kAckW:
      if (write_ts_ != 0 && m.aux == write_ts_) wacks_.insert(m.from);
      break;
    case kRead: {
      auto [it, fresh] = open_reads_.try_emplace(m.from, m.aux);
      if (!fresh && m.aux < it->second) break;  // stale/replayed READ
      it->second = m.aux;
      send_state(env, m.from, m.aux);
      break;
    }
    case kState:
      if ((m.aux >> 32) == rsn_ && rsn_ != 0) {
        rows_[m.from] =
            Pair{static_cast<std::uint32_t>(m.aux & 0xFFFF'FFFFULL), m.value};
      }
      break;
    case kConfirm: {
      const Pair p{static_cast<std::uint32_t>(m.aux & 0xFFFF'FFFFULL), m.value};
      if (p.ts <= cur_.ts) {
        Message ack;
        ack.kind = kMsgByzReg;
        ack.round = (config_.tag << 8) | kAckR;
        ack.aux = m.aux;
        env.send(m.from, ack);
      } else {
        // Bracha totality (or the writer's register) will deliver p.ts here
        // eventually if any correct process adopted it; ack then.
        pending_confirms_.push_back(PendingConfirm{m.from, m.aux >> 32, p});
      }
      break;
    }
    case kAckR:
      if ((m.aux >> 32) == rsn_ && rsn_ != 0) racks_.insert(m.from);
      break;
    default:
      break;
  }
}

void ByzRegister::pump(Env& env) {
  env.drain_inbox(drain_scratch_);
  for (const Message& m : drain_scratch_) handle(env, m);
  poll_gsm(env);
}

bool ByzRegister::write(Env& env, std::uint64_t v) {
  MM_ASSERT_MSG(env.self() == config_.writer, "single-writer register");
  MM_ASSERT_MSG(v <= 0xFFFF'FFFFULL, "values must fit 32 bits");
  const std::size_t n = env.n();
  if (use_bracha()) {
    MM_ASSERT_MSG(n > 3 * config_.f, "message-mode ByzRegister requires n > 3f");
  } else {
    MM_ASSERT_MSG(n > 2 * config_.f, "hybrid ByzRegister requires n > 2f");
  }
  MM_ASSERT_MSG(ts_ < kMaxTs, "timestamp space exhausted");

  const std::uint32_t ts = ++ts_;
  write_ts_ = ts;
  wacks_.clear();
  wacks_.insert(env.self());
  adopt(env, Pair{ts, v});  // the writer adopts its own pair immediately
  if (use_bracha()) bracha_for(ts).broadcast(env, v);

  const std::size_t need = n - config_.f;
  while (wacks_.size() < need) {
    pump(env);
    if (config_.use_gsm) {
      // Register-channel acknowledgements: a neighbor whose published
      // timestamp reached ts has adopted it — and registers cannot go silent.
      for (const Pid q : config_.gsm->neighbors(env.self())) {
        const std::uint64_t bits = runtime::read_key(env, pair_key(config_.tag, q));
        if (unpack_pair(bits).ts >= ts) wacks_.insert(q);
      }
    }
    if (wacks_.size() >= need) break;
    if (env.stop_requested()) {
      write_ts_ = 0;
      return false;
    }
    env.step();
  }
  write_ts_ = 0;
  return true;
}

std::optional<ByzRegister::Pair> ByzRegister::decide() const {
  const std::size_t f = config_.f;
  std::optional<Pair> best;
  for (const auto& [sender, p] : rows_) {
    std::size_t vouch = 0;
    std::size_t anchored = 0;
    for (const auto& [s2, p2] : rows_) {
      if (p2 == p) ++vouch;
      if (p2.ts <= p.ts) ++anchored;
    }
    if (vouch < f + 1) continue;
    // n − f rows at or below p.ts: any write completed before this read
    // began has n − 2f ≥ f + 1 correct adopters among them, so a stale pair
    // can never anchor (its adopters' rows sit strictly above it).
    if (anchored < anchor_need_) continue;
    if (!best.has_value() || p.ts > best->ts ||
        (p.ts == best->ts && p.v > best->v)) {
      best = p;
    }
  }
  return best;
}

std::optional<std::uint64_t> ByzRegister::read(Env& env) {
  const std::size_t n = env.n();
  anchor_need_ = n - config_.f;
  ++rsn_;
  rows_.clear();
  racks_.clear();

  Message rd;
  rd.kind = kMsgByzReg;
  rd.round = (config_.tag << 8) | kRead;
  rd.aux = rsn_;
  net::send_to_all(env, rd);

  // Phase 1: collect rows until a vouched, anchored pair emerges.
  for (;;) {
    pump(env);
    if (config_.use_gsm) {
      // Register rows override message rows: neighbors' published pairs are
      // evidence a message-silencing or -corrupting adversary cannot touch.
      for (const Pid q : config_.gsm->neighbors(env.self())) {
        const std::uint64_t bits = runtime::read_key(env, pair_key(config_.tag, q));
        if (bits != 0) rows_[q] = unpack_pair(bits);
      }
    }
    const auto got = decide();
    if (got.has_value()) {
      confirm_ = *got;
      break;
    }
    if (env.stop_requested()) return std::nullopt;
    env.step();
  }

  // Phase 2: write back. The read returns only once n − f servers hold a
  // pair at least as new, which forbids new-old inversion between reads.
  adopt(env, confirm_);
  Message cf;
  cf.kind = kMsgByzReg;
  cf.round = (config_.tag << 8) | kConfirm;
  cf.aux = (rsn_ << 32) | confirm_.ts;
  cf.value = confirm_.v;
  net::send_to_all(env, cf);

  const std::size_t need = n - config_.f;
  racks_.insert(env.self());
  while (racks_.size() < need) {
    pump(env);
    if (config_.use_gsm) {
      for (const Pid q : config_.gsm->neighbors(env.self())) {
        const std::uint64_t bits = runtime::read_key(env, pair_key(config_.tag, q));
        if (unpack_pair(bits).ts >= confirm_.ts) racks_.insert(q);
      }
    }
    if (racks_.size() >= need) break;
    if (env.stop_requested()) return std::nullopt;
    env.step();
  }
  return confirm_.v;
}

}  // namespace mm::core
