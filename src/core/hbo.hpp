// Hybrid Ben-Or (HBO) — the paper's consensus algorithm (Fig. 2).
//
// HBO runs Ben-Or's randomized message-passing consensus, but every process
// also *represents* its GSM neighbors: before sending in a phase, p agrees
// with each neighbor q's neighborhood — through the shared consensus object
// RVals[q, k] / PVals[q, k] — on the message q is supposed to send, and
// attaches the agreed ⟨q, val⟩ tuple to its own message. Receivers count
// *represented processes* (distinct ids across tuples), not senders. A
// virtual process q thus stays live as long as any member of {q} ∪ N(q) is
// correct, which is what buys fault tolerance beyond ⌊(n−1)/2⌋
// (Theorems 4.1–4.3).
//
// Deviation from Fig. 2 (documented in DESIGN.md): the paper's processes
// never halt. To make runs finite we add the standard decide broadcast: on
// deciding, a process broadcasts (DECIDE, v) and returns; any process that
// receives (DECIDE, v) decides v, re-broadcasts, and returns. With reliable
// links this preserves Agreement/Validity (the value is a decided one) and
// only strengthens Termination.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "net/msg_buffer.hpp"
#include "runtime/env.hpp"
#include "shm/consensus_object.hpp"

namespace mm::core {

class HboConsensus {
 public:
  struct Config {
    const graph::Graph* gsm = nullptr;  ///< shared-memory graph (must outlive the object)
    shm::ConsensusImpl impl = shm::ConsensusImpl::kCas;
    std::uint64_t max_rounds = 10'000;  ///< safety net; a run past this returns undecided
    /// Instance id for running many consensus instances in one system (the
    /// multivalued/RSM layers): namespaces messages and registers so
    /// instances cannot collide. Constraints: instance < 4096, and for
    /// instance != 0, max_rounds < 4096. Each process must execute its
    /// instances in increasing order (the receive buffer gc relies on it).
    std::uint64_t instance = 0;
  };

  HboConsensus(Config config, std::uint32_t initial_value);

  /// Process body: run consensus to completion (decision or stop/budget).
  void run(runtime::Env& env);

  /// Hand over messages drained from the inbox before run() — applications
  /// that multiplex the inbox (e.g. a vote-exchange phase ahead of
  /// consensus) must re-inject any consensus traffic they drained, or early
  /// senders' messages are silently lost.
  void seed_buffer(std::vector<runtime::Message> msgs) { buffer_.ingest(std::move(msgs)); }

  /// Move out everything left in the receive buffer after run() — foreign
  /// kinds and traffic for later instances. The multivalued layer threads
  /// this into the next instance's seed_buffer.
  [[nodiscard]] std::vector<runtime::Message> take_buffer() { return buffer_.take_all(); }

  /// −1 while undecided; otherwise the decided binary value. Safe to read
  /// concurrently with run() (ThreadRuntime) or between steps (SimRuntime).
  [[nodiscard]] int decision() const noexcept { return decision_.load(std::memory_order_acquire); }
  [[nodiscard]] std::uint64_t decided_round() const noexcept {
    return decided_round_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t initial_value() const noexcept { return initial_value_; }

 private:
  /// Agree (via the shared consensus objects) on each represented process'
  /// message for this phase/round and build the tuple array.
  [[nodiscard]] std::vector<runtime::RepTuple> build_tuples(runtime::Env& env,
                                                            std::uint8_t tag,
                                                            std::uint64_t round,
                                                            std::uint32_t domain,
                                                            std::uint32_t my_value);
  /// Per-q proposal variant (round start after a coin flip: fresh coin per q).
  [[nodiscard]] std::vector<runtime::RepTuple> build_tuples_random(runtime::Env& env,
                                                                   std::uint64_t round);

  /// Wait until messages of (kind, round) represent > n/2 distinct ids; the
  /// result maps represented id → agreed value. nullopt if a DECIDE arrived
  /// (handled by caller via decision_) or the run must stop.
  [[nodiscard]] std::optional<std::vector<std::optional<std::uint32_t>>> await_majority(
      runtime::Env& env, std::uint32_t kind, std::uint64_t round);

  /// Scan the buffer for a DECIDE; if found, adopt it. Returns true if decided.
  bool check_decide(runtime::Env& env);

  void decide(runtime::Env& env, std::uint32_t value, std::uint64_t round);

  /// Instance-namespaced message round / register round / decide marker.
  [[nodiscard]] std::uint64_t msg_round(std::uint64_t k) const noexcept;
  [[nodiscard]] std::uint64_t reg_round(std::uint64_t k) const;
  [[nodiscard]] std::uint64_t decide_round() const noexcept;

  Config config_;
  std::uint32_t initial_value_;
  net::MsgBuffer buffer_;
  std::atomic<int> decision_{-1};
  std::atomic<std::uint64_t> decided_round_{0};
};

}  // namespace mm::core
