#include "core/hbo.hpp"

#include <limits>

#include "common/assert.hpp"
#include "core/tags.hpp"
#include "net/broadcast.hpp"

namespace mm::core {

using runtime::Env;
using runtime::Message;
using runtime::RegKey;
using runtime::RepTuple;

namespace {
// Low 48 bits of Message.round carry the algorithm round; the high 16 carry
// the instance. The all-ones round marks a DECIDE broadcast of an instance.
constexpr std::uint64_t kRoundMask = (1ULL << 48) - 1;
}  // namespace

HboConsensus::HboConsensus(Config config, std::uint32_t initial_value)
    : config_(config), initial_value_(initial_value) {
  MM_ASSERT_MSG(config_.gsm != nullptr, "HBO requires a shared-memory graph");
  MM_ASSERT_MSG(initial_value <= 1, "HBO is binary consensus");
  MM_ASSERT_MSG(config_.instance < 4096, "instance id space is 12 bits");
  // The k+1 proposal at the final round must still fit the 12-bit space.
  MM_ASSERT_MSG(config_.instance == 0 || config_.max_rounds < 4095,
                "namespaced instances need max_rounds < 4095");
}

std::uint64_t HboConsensus::msg_round(std::uint64_t k) const noexcept {
  return (config_.instance << 48) | (k & kRoundMask);
}

std::uint64_t HboConsensus::decide_round() const noexcept {
  return (config_.instance << 48) | kRoundMask;
}

std::uint64_t HboConsensus::reg_round(std::uint64_t k) const {
  if (config_.instance == 0) {
    MM_ASSERT_MSG(k < (1ULL << 24), "register round space exhausted");
    return k;
  }
  MM_ASSERT(k < 4096);
  return (config_.instance << 12) | k;
}

std::vector<RepTuple> HboConsensus::build_tuples(Env& env, std::uint8_t tag,
                                                 std::uint64_t round, std::uint32_t domain,
                                                 std::uint32_t my_value) {
  const std::vector<Pid> hood = config_.gsm->closed_neighborhood(env.self());
  std::vector<RepTuple> tuples;
  tuples.reserve(hood.size());
  for (Pid q : hood) {
    const shm::ConsensusObject object{RegKey::make(tag, q, reg_round(round)), domain,
                                      config_.impl};
    try {
      tuples.push_back(RepTuple{q, object.propose(env, my_value)});
    } catch (const MemoryFailure&) {
      // §6 partial-memory-failure extension: q's host memory is gone, so q
      // can no longer be represented. Safe to skip — the object decided at
      // most once while alive, so surviving tuples never disagree.
    }
  }
  return tuples;
}

std::vector<RepTuple> HboConsensus::build_tuples_random(Env& env, std::uint64_t round) {
  // Fig. 2's final branch draws a fresh random bit per represented process.
  const std::vector<Pid> hood = config_.gsm->closed_neighborhood(env.self());
  std::vector<RepTuple> tuples;
  tuples.reserve(hood.size());
  for (Pid q : hood) {
    const std::uint32_t v = env.coin() ? 1 : 0;
    const shm::ConsensusObject object{RegKey::make(kTagRVals, q, reg_round(round)),
                                      kBinaryDomain, config_.impl};
    try {
      tuples.push_back(RepTuple{q, object.propose(env, v)});
    } catch (const MemoryFailure&) {
      // See build_tuples.
    }
  }
  return tuples;
}

bool HboConsensus::check_decide(Env& env) {
  if (decision_.load(std::memory_order_acquire) >= 0) return true;
  for (const Message* m : buffer_.matching(kMsgDecide, decide_round())) {
    // DECIDE payload: bit 0 = value, upper bits = round it was decided in.
    decide(env, static_cast<std::uint32_t>(m->value & 1), m->value >> 1);
    return true;
  }
  return false;
}

void HboConsensus::decide(Env& env, std::uint32_t value, std::uint64_t round) {
  decision_.store(static_cast<int>(value), std::memory_order_release);
  decided_round_.store(round, std::memory_order_release);
  Message m;
  m.kind = kMsgDecide;
  m.round = decide_round();
  m.value = (round << 1) | value;
  net::send_to_others(env, m);
}

std::optional<std::vector<std::optional<std::uint32_t>>> HboConsensus::await_majority(
    Env& env, std::uint32_t kind, std::uint64_t round) {
  const std::size_t n = env.n();
  for (;;) {
    buffer_.pump(env);
    if (check_decide(env)) return std::nullopt;

    std::vector<std::optional<std::uint32_t>> rep(n);
    std::size_t represented = 0;
    for (const Message* m : buffer_.matching(kind, msg_round(round))) {
      for (const RepTuple& t : m->tuples) {
        MM_ASSERT(t.pid.index() < n);
        auto& slot = rep[t.pid.index()];
        if (!slot.has_value()) {
          slot = t.value;
          ++represented;
        } else {
          // Tuples for the same process come from the same consensus
          // object, so disagreement here is an algorithm bug.
          MM_ASSERT_MSG(*slot == t.value, "inconsistent representation tuple");
        }
      }
    }
    if (2 * represented > n) return rep;

    if (env.stop_requested()) return std::nullopt;
    env.step();
  }
}

void HboConsensus::run(Env& env) {
  const std::size_t n = env.n();
  MM_ASSERT_MSG(config_.gsm->size() == n, "GSM size must match the system size");

  std::uint32_t estimate = initial_value_;
  auto tuples = build_tuples(env, kTagRVals, 1, kBinaryDomain, estimate);

  for (std::uint64_t k = 1; k <= config_.max_rounds; ++k) {
    // Drop completed rounds of this algorithm's own kinds only; foreign
    // traffic (and later instances') stays buffered for take_buffer().
    const std::uint64_t floor = msg_round(k);
    buffer_.erase_matching([floor](const Message& m) {
      return (m.kind == kMsgPhaseR || m.kind == kMsgPhaseP || m.kind == kMsgDecide) &&
             m.round < floor;
    });

    // Phase R: broadcast agreed estimates, await a represented majority.
    Message round_msg;
    round_msg.kind = kMsgPhaseR;
    round_msg.round = msg_round(k);
    round_msg.tuples = tuples;
    net::send_to_all(env, round_msg);

    const auto rep_r = await_majority(env, kMsgPhaseR, k);
    if (!rep_r.has_value()) return;

    std::size_t count[2] = {0, 0};
    for (const auto& val : *rep_r)
      if (val.has_value() && *val <= 1) ++count[*val];

    std::uint32_t pval = kValQuestion;
    if (2 * count[0] > n) pval = 0;
    if (2 * count[1] > n) pval = 1;
    tuples = build_tuples(env, kTagPVals, k, kPhasePDomain, pval);

    // Phase P: broadcast, await a represented majority, decide on a
    // represented majority for a non-'?' value.
    Message phase_msg;
    phase_msg.kind = kMsgPhaseP;
    phase_msg.round = msg_round(k);
    phase_msg.tuples = tuples;
    net::send_to_all(env, phase_msg);

    const auto rep_p = await_majority(env, kMsgPhaseP, k);
    if (!rep_p.has_value()) return;

    std::size_t pcount[2] = {0, 0};
    bool any_value = false;
    std::uint32_t some_value = 0;
    for (const auto& val : *rep_p) {
      if (val.has_value() && *val <= 1) {
        ++pcount[*val];
        any_value = true;
        some_value = *val;
      }
    }
    for (std::uint32_t b = 0; b <= 1; ++b) {
      if (2 * pcount[b] > n) {
        decide(env, b, k);
        return;
      }
    }

    // Next round's estimates: adopt a seen value, else flip coins.
    if (any_value) {
      estimate = some_value;
      tuples = build_tuples(env, kTagRVals, k + 1, kBinaryDomain, estimate);
    } else {
      tuples = build_tuples_random(env, k + 1);
    }
  }
  // Round budget exhausted: return undecided (recorded as non-termination).
}

}  // namespace mm::core
