// Multi-decree Paxos replicated log driven by the m&m Ω — the classic
// message-passing RSM (Multi-Paxos / Raft family), built here so E13 can
// contrast it against the m&m replicated log on equal footing:
//   * identical client model (every replica wants its commands committed),
//   * identical liveness oracle (the same OmegaMM instance),
//   * but quorum-bound: with ⌈n/2⌉ replicas crashed it wedges permanently,
//     which is precisely what the m&m log does not.
//
// Protocol (standard Multi-Paxos):
//   * One ballot per leadership: on becoming Ω-leader, broadcast PREPARE(b);
//     acceptors that promise report every slot they ever accepted.
//   * The new leader first re-proposes inherited values (highest accepted
//     ballot per slot), then assigns queued commands to fresh slots.
//   * Per-slot ACCEPT/ACCEPTED with majority quorums; a chosen slot is
//     announced with COMMIT and applied in log order.
//   * Non-leaders forward their commands to their current leader view and
//     re-forward until they see them committed.
//
// Safety is per-slot single-decree Paxos and holds under full asynchrony and
// arbitrary Ω churn; Ω provides liveness only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/omega.hpp"
#include "runtime/env.hpp"

namespace mm::core {

class PaxosLog {
 public:
  struct Config {
    OmegaMM::Config omega{.mech = OmegaMM::NotifyMech::kRegister};
    std::uint64_t attempt_timeout = 512;  ///< own iterations before a re-prepare
    std::uint64_t forward_every = 64;     ///< command re-forward period (iterations)
    /// Called once per slot, in log order, when the slot's command commits.
    std::function<void(std::uint64_t slot, std::uint64_t command)> apply;
  };

  PaxosLog(Config config, std::vector<std::uint64_t> my_commands);

  /// Process body: serves proposer/acceptor/learner roles forever (until
  /// Env::stop_requested()). Commands from `my_commands` are injected into
  /// the log as leadership allows.
  void run(runtime::Env& env);

  /// Committed prefix applied so far (stable snapshot only after the run).
  [[nodiscard]] const std::vector<std::uint64_t>& applied_log() const noexcept {
    return applied_;
  }
  /// True once every one of this process' commands is in the applied prefix.
  [[nodiscard]] bool all_mine_committed() const noexcept {
    return mine_committed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t applied_count() const noexcept {
    return applied_count_.load(std::memory_order_acquire);
  }

 private:
  struct Accepted {
    std::uint64_t ballot = 0;
    std::uint64_t command = 0;
  };
  struct PromiseInfo {
    std::size_t expected_entries = 0;
    std::size_t received_entries = 0;
    bool header = false;
    bool counted = false;
  };

  void handle(runtime::Env& env, const runtime::Message& m);
  void start_prepare(runtime::Env& env);
  void begin_accept_phase(runtime::Env& env);
  void propose_slot(runtime::Env& env, std::uint64_t slot, std::uint64_t command);
  void commit_slot(runtime::Env& env, std::uint64_t slot, std::uint64_t command);
  void apply_ready(runtime::Env& env);
  void pump_client(runtime::Env& env);

  Config config_;
  OmegaMM omega_;

  // Client side.
  std::deque<std::uint64_t> pending_;        ///< my commands not yet committed
  std::set<std::uint64_t> mine_;             ///< all commands I ever submitted
  std::atomic<bool> mine_committed_{false};

  // Acceptor.
  std::uint64_t promised_ = 0;
  std::map<std::uint64_t, Accepted> accepted_;

  // Learner.
  std::map<std::uint64_t, std::uint64_t> chosen_;
  std::vector<std::uint64_t> applied_;
  std::atomic<std::uint64_t> applied_count_{0};

  // Proposer (valid while leading_).
  bool leading_ = false;
  bool accept_phase_ = false;
  std::uint64_t ballot_ = 0;
  std::uint64_t ballot_counter_ = 0;
  std::uint64_t phase_started_ = 0;
  std::vector<PromiseInfo> promises_;
  std::size_t full_promises_ = 0;
  std::map<std::uint64_t, Accepted> inherited_;
  std::uint64_t next_slot_ = 0;
  std::map<std::uint64_t, std::pair<std::uint64_t, std::set<Pid>>> in_flight_;  ///< slot → (cmd, acks)

  std::uint64_t iter_ = 0;
};

}  // namespace mm::core
