// Single-decree Paxos driven by the m&m leader election — the combination
// the paper motivates in §2/§5: Ω is the weakest failure detector for
// consensus, and the m&m model implements Ω with almost no synchrony. The
// result is a DETERMINISTIC consensus (contrast HBO's coin flips) that
// tolerates f < n/2 crashes and whose only synchrony requirement is the one
// timely process Ω needs — no timely links anywhere (compare Paxos deployed
// over a message-passing ◇-timely-link detector).
//
// Every process plays proposer, acceptor, and learner. The embedded OmegaMM
// instance (register-notification variant, so leadership itself needs no
// message timeliness) gates the proposer role: a process attempts a ballot
// only while it believes itself leader. Safety is classic Paxos and holds
// under full asynchrony regardless of Ω's output; Ω only provides liveness.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/omega.hpp"
#include "runtime/env.hpp"

namespace mm::core {

class OmegaPaxos {
 public:
  struct Config {
    OmegaMM::Config omega{.mech = OmegaMM::NotifyMech::kRegister};
    /// Proposer retry timeout in own iterations: a stalled ballot attempt is
    /// abandoned (and retried with a higher ballot) after this many.
    std::uint64_t attempt_timeout = 256;
  };

  OmegaPaxos(Config config, std::uint32_t initial_value);

  /// Process body: participates until decided AND the decision has been
  /// broadcast, then returns. (Ω keeps running until then.)
  void run(runtime::Env& env);

  [[nodiscard]] int decision() const noexcept { return decision_.load(std::memory_order_acquire); }
  [[nodiscard]] std::uint32_t initial_value() const noexcept { return initial_value_; }
  /// Number of ballots this process attempted as proposer (liveness probe).
  [[nodiscard]] std::uint64_t ballots_attempted() const noexcept {
    return ballots_.load(std::memory_order_acquire);
  }

 private:
  struct AcceptorState {
    std::uint64_t promised = 0;          ///< highest ballot promised (0 = none)
    std::uint64_t accepted_ballot = 0;   ///< 0 = nothing accepted
    std::uint32_t accepted_value = 0;
  };
  struct ProposerState {
    bool active = false;
    std::uint64_t ballot = 0;
    std::uint64_t started_iter = 0;
    bool accept_phase = false;
    std::uint32_t value = 0;
    std::vector<bool> promised_from;
    std::vector<bool> accepted_from;
    std::size_t promises = 0;
    std::size_t accepts = 0;
    std::uint64_t best_accepted_ballot = 0;
  };

  void handle(runtime::Env& env, const runtime::Message& m);
  void start_ballot(runtime::Env& env);
  void decide(runtime::Env& env, std::uint32_t value);

  Config config_;
  std::uint32_t initial_value_;
  OmegaMM omega_;
  AcceptorState acceptor_;
  ProposerState proposer_;
  std::uint64_t iter_ = 0;
  std::atomic<int> decision_{-1};
  std::atomic<std::uint64_t> ballots_{0};
};

}  // namespace mm::core
