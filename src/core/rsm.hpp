// Replicated state machine over m&m consensus — "evaluating algorithms in
// practice", per the paper's conclusion.
//
// A LogReplica agrees on a totally ordered log of fixed-width commands, one
// MultiConsensus instance per slot. Because each slot's consensus is HBO
// underneath, the log stays live as long as the surviving replicas represent
// a strict majority in GSM — i.e. the replicated service inherits the
// beyond-majority fault tolerance of §4.
//
// Usage: every replica calls run_slot(env, my_command) for slot 0, 1, 2, ...
// in lockstep (a replica with nothing to propose submits kNoopCommand). The
// decided command sequence is identical at every replica; apply() hands each
// decided command to the application in order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/multi_consensus.hpp"
#include "graph/graph.hpp"
#include "runtime/env.hpp"
#include "shm/consensus_object.hpp"

namespace mm::core {

inline constexpr std::uint64_t kNoopCommand = 0;

class LogReplica {
 public:
  struct Config {
    const graph::Graph* gsm = nullptr;
    shm::ConsensusImpl impl = shm::ConsensusImpl::kCas;
    std::uint32_t command_bits = 20;  ///< width of a command word
    std::uint32_t max_slots = 64;     ///< instance-space budget: slots*bits ≤ 4095
    std::uint64_t max_rounds_per_bit = 512;
    /// Called once per decided slot, in log order.
    std::function<void(std::uint64_t slot, std::uint64_t command)> apply;
  };

  explicit LogReplica(Config config);

  /// Run consensus for the next slot, proposing `command` (use kNoopCommand
  /// to just participate). Returns the decided command, or nullopt if the
  /// run was stopped before the slot decided.
  std::optional<std::uint64_t> run_slot(runtime::Env& env, std::uint64_t command);

  [[nodiscard]] const std::vector<std::uint64_t>& log() const noexcept { return log_; }
  [[nodiscard]] std::size_t next_slot() const noexcept { return log_.size(); }

 private:
  Config config_;
  std::vector<std::uint64_t> log_;
  std::vector<runtime::Message> carry_;  ///< messages threaded between slots
};

}  // namespace mm::core
