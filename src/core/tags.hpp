// Well-known register tags and message kinds used by the core algorithms.
// Centralised so that no two algorithms can collide in the register
// namespace and so tests can decode traffic.
#pragma once

#include <cstdint>

namespace mm::core {

// Register tags (RegKey.tag). One register namespace per algorithm object.
inline constexpr std::uint8_t kTagRVals = 1;         ///< HBO RVals[q, k] consensus objects
inline constexpr std::uint8_t kTagPVals = 2;         ///< HBO PVals[q, k] consensus objects
inline constexpr std::uint8_t kTagSmConsensus = 3;   ///< pure shared-memory consensus baseline
inline constexpr std::uint8_t kTagState = 4;         ///< Ω STATE[p] (Fig. 3)
inline constexpr std::uint8_t kTagNotifications = 5; ///< Ω NOTIFICATIONS[p] (Fig. 5)
inline constexpr std::uint8_t kTagNotifies = 6;      ///< Ω NOTIFIES[p][q] (Fig. 5)
inline constexpr std::uint8_t kTagMutex = 7;         ///< m&m mutual exclusion (E12)
inline constexpr std::uint8_t kTagByzReg = 8;        ///< ByzRegister published pairs (E20)

// Message kinds (Message.kind).
inline constexpr std::uint32_t kMsgPhaseR = 1;   ///< HBO phase R
inline constexpr std::uint32_t kMsgPhaseP = 2;   ///< HBO phase P
inline constexpr std::uint32_t kMsgDecide = 3;   ///< HBO decision broadcast (termination add-on)
inline constexpr std::uint32_t kMsgNotify = 4;   ///< Ω notification (Fig. 4)
inline constexpr std::uint32_t kMsgAccuse = 5;   ///< Ω accusation (Fig. 3)
inline constexpr std::uint32_t kMsgAlive = 6;    ///< message-passing Ω baseline heartbeat
inline constexpr std::uint32_t kMsgWakeup = 7;    ///< m&m mutex wakeup (intro example)
inline constexpr std::uint32_t kMsgCandidate = 8; ///< multivalued-consensus candidate gossip
inline constexpr std::uint32_t kMsgAbdRead = 9;   ///< ABD read query / reply
inline constexpr std::uint32_t kMsgAbdWrite = 10; ///< ABD write-back / ack
inline constexpr std::uint32_t kMsgPaxos = 11;    ///< Ω-Paxos prepare/accept traffic
inline constexpr std::uint32_t kMsgBracha = 12;   ///< Bracha reliable-broadcast phases
inline constexpr std::uint32_t kMsgPaxosLog = 13; ///< Multi-Paxos replicated-log traffic
inline constexpr std::uint32_t kMsgByzReg = 14;   ///< Byzantine-tolerant register traffic

// HBO value encoding: binary consensus values plus the phase-P '?'.
inline constexpr std::uint32_t kValQuestion = 2;  ///< the '?' of Fig. 2
inline constexpr std::uint32_t kBinaryDomain = 2;
inline constexpr std::uint32_t kPhasePDomain = 3;  ///< {0, 1, ?}

}  // namespace mm::core
