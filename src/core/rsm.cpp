#include "core/rsm.hpp"

#include "common/assert.hpp"

namespace mm::core {

LogReplica::LogReplica(Config config) : config_(std::move(config)) {
  MM_ASSERT_MSG(config_.gsm != nullptr, "replica requires a GSM");
  MM_ASSERT_MSG(config_.command_bits >= 1 && config_.command_bits <= 63,
                "command width 1..63 bits");
  MM_ASSERT_MSG(1 + static_cast<std::uint64_t>(config_.max_slots) * config_.command_bits <= 4096,
                "slot*bits exceeds the consensus instance space");
}

std::optional<std::uint64_t> LogReplica::run_slot(runtime::Env& env, std::uint64_t command) {
  const std::size_t slot = log_.size();
  MM_ASSERT_MSG(slot < config_.max_slots, "log slot budget exhausted");
  MM_ASSERT_MSG(config_.command_bits == 64 || command < (1ULL << config_.command_bits),
                "command exceeds configured width");

  MultiConsensus::Config mc;
  mc.gsm = config_.gsm;
  mc.impl = config_.impl;
  mc.bits = config_.command_bits;
  mc.instance_base = 1 + static_cast<std::uint64_t>(slot) * config_.command_bits;
  mc.max_rounds_per_bit = config_.max_rounds_per_bit;

  MultiConsensus consensus{mc, command};
  consensus.seed_buffer(std::move(carry_));
  carry_.clear();
  consensus.run(env);
  carry_ = consensus.take_buffer();

  const auto decided = consensus.decision();
  if (!decided.has_value()) return std::nullopt;
  log_.push_back(*decided);
  if (config_.apply) config_.apply(slot, *decided);
  return decided;
}

}  // namespace mm::core
