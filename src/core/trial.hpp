// Seeded end-to-end trials: one function call = one adversarial run of a
// consensus algorithm (or an Ω stabilization scenario) under the
// deterministic simulator, with safety checked on the way out. Tests sweep
// these; benches aggregate them into the experiment tables.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "check/linearizability.hpp"
#include "graph/graph.hpp"
#include "runtime/fault_hook.hpp"
#include "runtime/sim_config.hpp"
#include "shm/consensus_object.hpp"

namespace mm::core {

enum class Algo : std::uint8_t { kHbo, kBenOr, kSmConsensus };
[[nodiscard]] const char* to_string(Algo algo) noexcept;

/// How the crash set is chosen.
enum class CrashPick : std::uint8_t {
  kNone,       ///< no crashes regardless of f
  kRandom,     ///< uniformly random f-subset
  kWorstCase,  ///< the f-subset minimising |C ∪ δC| (exact witness; n ≤ 26) —
               ///< the adversary Theorem 4.3 is stated against
  kTargeted,   ///< exactly the processes in `targeted_crash_mask`
};

struct ConsensusTrialConfig {
  graph::Graph gsm;
  std::uint64_t seed = 1;
  Algo algo = Algo::kHbo;
  shm::ConsensusImpl impl = shm::ConsensusImpl::kCas;

  std::size_t f = 0;  ///< number of processes to crash
  CrashPick crash_pick = CrashPick::kRandom;
  /// Crash set for kTargeted (bit p = crash process p); `f` is ignored then.
  std::uint64_t targeted_crash_mask = 0;
  /// Crash steps are drawn uniformly from [0, crash_window]. 0 = crash at
  /// step 0, i.e. initially-dead processes — the adversary the tolerance
  /// thresholds are stated against.
  Step crash_window = 2'000;

  /// Ben-Or's *configured* crash bound (its quorum is n − this). Defaults to
  /// ⌊(n−1)/2⌋, the most it can safely be configured for; the number of
  /// crashes actually injected is `f` above, which may exceed it — that is
  /// precisely the E2 comparison.
  std::optional<std::size_t> ben_or_quorum_f;

  /// Initial values: if set, per-process; otherwise seeded-random bits.
  std::optional<std::vector<std::uint32_t>> inputs;

  Step budget = 400'000;  ///< total scheduler steps before giving up
  std::uint64_t max_rounds = 1'000;

  Step min_delay = 1;
  Step max_delay = 8;
  std::optional<runtime::Partition> partition;

  /// Execution backend override; unset = SimConfig's resolution (environment
  /// MM_SIM_BACKEND, then the coroutine default). Trajectories are
  /// backend-invariant, so this only affects speed.
  std::optional<runtime::SimBackend> backend;

  /// Reactive fault injector installed into the runtime for this run (see
  /// runtime/fault_hook.hpp; non-owning, may be null). Injectors are
  /// stateful per run, so sweeps — which copy this config per seed — require
  /// it to be null; build a fresh engine inside the per-seed closure instead.
  runtime::FaultInjector* injector = nullptr;
};

struct ConsensusTrialResult {
  bool agreement = true;        ///< no two decided processes differ (always checked)
  bool validity = true;         ///< every decision is some process' input
  bool all_correct_decided = false;  ///< termination within budget
  std::optional<std::uint32_t> decision;
  std::uint64_t max_decided_round = 0;  ///< largest round any process decided in
  Step steps_used = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t reg_ops = 0;    ///< reads + writes + CAS
  std::vector<bool> crashed;    ///< which processes the adversary crashed
};

[[nodiscard]] ConsensusTrialResult run_consensus_trial(const ConsensusTrialConfig& cfg);

/// Convenience: fraction of `trials` seeds (seed, seed+1, ...) in which all
/// correct processes decided, with safety asserted on every run. Trials fan
/// out across the MM_JOBS worker pool (see exec/parallel_map.hpp); the
/// aggregate is reduced in seed order and is bit-identical at any job count.
struct TerminationSweep {
  double termination_rate = 0.0;
  double mean_decided_round = 0.0;  ///< over terminating runs
  double mean_steps = 0.0;          ///< over terminating runs
  std::uint64_t safety_violations = 0;
};
[[nodiscard]] TerminationSweep sweep_termination(ConsensusTrialConfig cfg,
                                                 std::uint64_t trials);

// ---------------------------------------------------------------------------
// Byzantine register trials (E20)
// ---------------------------------------------------------------------------

/// One adversarial run of a ByzRegister instance: p0 writes values 1..writes
/// in order, every process (p0 included) then performs `reads_per_proc`
/// reads, and everyone keeps serving until all correct processes finished.
/// The Byzantine set is declarative here (validation + oracle scoping); the
/// actual corruption comes from the installed injector's kGoByzantine rules.
struct ByzRegisterTrialConfig {
  graph::Graph gsm;
  std::uint64_t seed = 1;
  std::size_t f = 0;        ///< configured tolerance of the register instance
  bool use_gsm = false;     ///< hybrid m&m mode (see core/byz_register.hpp)
  std::size_t writes = 3;   ///< writer writes 1..writes
  std::size_t reads_per_proc = 2;
  Step budget = 400'000;
  Step min_delay = 1;
  Step max_delay = 8;
  /// Declarative Byzantine set (empty = none); must not overlap crash_at and
  /// is validated against the register's resilience bound (n > 3f message
  /// mode, n > 2f hybrid — hybrid past n > 3f also needs the writer to
  /// neighbor every process, since the Bracha channel is then disabled).
  std::vector<std::uint8_t> byzantine;
  std::vector<std::optional<Step>> crash_at;  ///< crash plan (within f budget)
  std::optional<runtime::SimBackend> backend;
  runtime::FaultInjector* injector = nullptr;
};

struct ByzRegisterTrialResult {
  bool completed = false;   ///< all correct processes finished their ops
  Step steps_used = 0;
  std::vector<std::uint64_t> written;  ///< values the writer's code issued
  /// Completed operations per process (writes at p0, reads everywhere),
  /// recorded with invocation/response steps for the linearizability oracle.
  std::vector<check::HistoryRecorder> histories;
  /// Per-process adopted (ts → value) logs for the agreement oracle.
  std::vector<std::map<std::uint32_t, std::uint64_t>> adopted;
  std::vector<bool> crashed;
};

[[nodiscard]] ByzRegisterTrialResult run_byz_register_trial(
    const ByzRegisterTrialConfig& cfg);

// ---------------------------------------------------------------------------
// Ω trials
// ---------------------------------------------------------------------------

enum class OmegaAlgo : std::uint8_t { kMnmReliable, kMnmFairLossy, kMessagePassing };
[[nodiscard]] const char* to_string(OmegaAlgo algo) noexcept;

struct OmegaTrialConfig {
  std::size_t n = 8;
  std::uint64_t seed = 1;
  OmegaAlgo algo = OmegaAlgo::kMnmReliable;
  double drop_prob = 0.3;  ///< used by kMnmFairLossy

  Step min_delay = 1;
  Step max_delay = 8;

  /// The process guaranteed timely by the scheduler (§3). Others run at
  /// `slow_weight` relative scheduling weight.
  Pid timely{0};
  Step timely_bound = 8;
  double slow_weight = 1.0;

  /// Crash the initial stable leader at this step (0 = never) to measure
  /// failover.
  Step crash_leader_at = 0;

  Step budget = 600'000;
  /// Stability horizon: consider the system stabilized once every correct
  /// process has reported the same correct leader for this many consecutive
  /// checks (checks run every check_every steps).
  Step check_every = 500;
  int stable_checks = 10;

  /// Execution backend override; see ConsensusTrialConfig::backend.
  std::optional<runtime::SimBackend> backend;

  /// Reactive fault injector; see ConsensusTrialConfig::injector.
  runtime::FaultInjector* injector = nullptr;
};

struct OmegaTrialResult {
  bool stabilized = false;
  Pid final_leader = Pid::none();
  Step stabilization_step = 0;   ///< first step of the final stable streak
  Step failover_step = 0;        ///< same, but measured after the crash (if any)
  // Steady-state per-window operation rates, measured after stabilization
  // (these are the Theorem 5.1/5.2 observables).
  double steady_msgs_per_1k = 0.0;
  double leader_writes_per_1k = 0.0;
  double leader_reads_per_1k = 0.0;
  double leader_remote_per_1k = 0.0;      ///< leader's remote reads+writes (§5.3)
  double others_writes_per_1k = 0.0;
  double others_reads_per_1k = 0.0;
};

[[nodiscard]] OmegaTrialResult run_omega_trial(const OmegaTrialConfig& cfg);

/// Parallel fan-out of independent Ω trials: result[i] is run_omega_trial
/// with cfg.seed = seeds[i], returned in input order — deterministic at any
/// MM_JOBS, so callers can reduce however they like.
[[nodiscard]] std::vector<OmegaTrialResult> run_omega_trials(
    const OmegaTrialConfig& cfg, const std::vector<std::uint64_t>& seeds);

}  // namespace mm::core
