// Receive-side buffering for round-based algorithms.
//
// HBO's receive rule (Fig. 2) is "wait for messages of the form (phase, k, *)
// representing more than n/2 processes". Processes run rounds at different
// speeds, so a receiver must keep messages from future rounds while
// discarding ones from rounds it has already completed. MsgBuffer implements
// exactly that retention policy over Env::drain_inbox().
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/message.hpp"

namespace mm::net {

using runtime::Message;

class MsgBuffer {
 public:
  /// Append freshly drained messages.
  void ingest(std::vector<Message> msgs);
  /// Drain env's inbox into the buffer through a reused scratch buffer, so
  /// the steady-state pump does not allocate (the per-step hot path of every
  /// round-based algorithm).
  void pump(runtime::Env& env);

  /// Pointers into the buffer for all messages with this (kind, round).
  /// Invalidated by ingest/pump/gc.
  [[nodiscard]] std::vector<const Message*> matching(std::uint32_t kind,
                                                     std::uint64_t round) const;

  /// Number of buffered messages (all kinds/rounds).
  [[nodiscard]] std::size_t size() const noexcept { return msgs_.size(); }

  /// Discard every message with round < `round` (completed rounds).
  void gc_below(std::uint64_t round);

  /// Discard messages matching pred. Algorithms that share the inbox with
  /// other protocols use this to gc only their own kinds.
  template <typename Pred>
  void erase_matching(Pred&& pred) {
    std::erase_if(msgs_, std::forward<Pred>(pred));
  }

  /// Move every buffered message out (e.g. to hand leftovers to the next
  /// protocol phase after this algorithm finished).
  [[nodiscard]] std::vector<Message> take_all() {
    std::vector<Message> out;
    out.swap(msgs_);
    return out;
  }

 private:
  std::vector<Message> msgs_;
  std::vector<Message> scratch_;  ///< reused drain buffer (see pump)
};

}  // namespace mm::net
