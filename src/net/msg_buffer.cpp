#include "net/msg_buffer.hpp"

#include <algorithm>
#include <iterator>

namespace mm::net {

void MsgBuffer::ingest(std::vector<Message> msgs) {
  msgs_.insert(msgs_.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
}

void MsgBuffer::pump(runtime::Env& env) {
  env.drain_inbox(scratch_);
  msgs_.insert(msgs_.end(), std::make_move_iterator(scratch_.begin()),
               std::make_move_iterator(scratch_.end()));
  scratch_.clear();  // keeps capacity for the next drain
}

std::vector<const Message*> MsgBuffer::matching(std::uint32_t kind,
                                                std::uint64_t round) const {
  std::vector<const Message*> out;
  for (const Message& m : msgs_)
    if (m.kind == kind && m.round == round) out.push_back(&m);
  return out;
}

void MsgBuffer::gc_below(std::uint64_t round) {
  std::erase_if(msgs_, [round](const Message& m) { return m.round < round; });
}

}  // namespace mm::net
