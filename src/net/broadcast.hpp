// Broadcast helpers over the fully connected network (§3).
#pragma once

#include "runtime/env.hpp"

namespace mm::net {

/// Send a copy of m to every process, including the sender (HBO counts its
/// own message toward the majority like any other).
void send_to_all(runtime::Env& env, const runtime::Message& m);

/// Send a copy of m to every process except the sender (leader-election
/// notifications, Fig. 3 line 11).
void send_to_others(runtime::Env& env, const runtime::Message& m);

}  // namespace mm::net
