#include "net/broadcast.hpp"

namespace mm::net {

void send_to_all(runtime::Env& env, const runtime::Message& m) {
  for (std::uint32_t i = 0; i < env.n(); ++i) env.send(Pid{i}, m);
}

void send_to_others(runtime::Env& env, const runtime::Message& m) {
  for (std::uint32_t i = 0; i < env.n(); ++i) {
    const Pid to{i};
    if (to != env.self()) env.send(to, m);
  }
}

}  // namespace mm::net
