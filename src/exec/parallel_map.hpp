// parallel_map — the parallel trial engine's front door.
//
// Runs fn(0), fn(1), ..., fn(count-1) across a fixed-size worker pool and
// returns the results *in index order*, so any reduction the caller performs
// is bit-identical to the sequential loop it replaced — including
// floating-point accumulation order. Parallelism is safe exactly when each
// fn(i) is a pure function of i (the seeded-trial contract: one index = one
// seed = one self-contained SimRuntime).
//
// Error semantics: exceptions are captured per index and the one thrown by
// the *smallest* index is rethrown after the pool drains ("first seed
// wins"). This is deterministic: once some index has failed, only smaller
// indices keep being claimed, and every index below the eventual winner runs
// to completion. A throwing trial therefore surfaces exactly like it would
// have sequentially, and can never deadlock or abandon the pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <type_traits>
#include <vector>

#include "exec/jobs.hpp"
#include "exec/worker_pool.hpp"

namespace mm::exec {

template <typename Fn>
auto parallel_map(std::uint64_t count, Fn&& fn, std::size_t jobs = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::uint64_t>> {
  using R = std::invoke_result_t<Fn&, std::uint64_t>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results must be default-constructible");
  if (jobs == 0) jobs = default_jobs();

  std::vector<R> out(count);
  if (jobs <= 1 || count <= 1) {
    // MM_JOBS=1: the historical sequential path, verbatim — same thread,
    // same order, exceptions propagate from the failing index directly.
    for (std::uint64_t i = 0; i < count; ++i) out[i] = fn(i);
    return out;
  }

  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::uint64_t> first_error{count};
  WorkerPool::run_indexed(count, jobs, [&](std::uint64_t i) {
    if (i > first_error.load(std::memory_order_relaxed)) return;
    try {
      out[i] = fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
      std::uint64_t cur = first_error.load(std::memory_order_relaxed);
      while (i < cur && !first_error.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
      }
    }
  });
  const std::uint64_t bad = first_error.load(std::memory_order_relaxed);
  if (bad < count) std::rethrow_exception(errors[bad]);
  return out;
}

}  // namespace mm::exec
