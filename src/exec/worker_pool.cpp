#include "exec/worker_pool.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace mm::exec {

void WorkerPool::run_indexed(std::uint64_t count, std::size_t workers,
                             const std::function<void(std::uint64_t)>& job) {
  if (count == 0) return;
  if (workers > count) workers = static_cast<std::size_t>(count);
  if (workers <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) job(i);
    return;
  }
  std::atomic<std::uint64_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      job(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(worker);
  worker();  // the caller is worker 0
  for (auto& t : threads) t.join();
}

void WorkerPool::run_per_worker(std::uint64_t count,
                                const std::function<void(std::uint64_t)>& job) {
  if (count == 0) return;
  if (count == 1) {
    job(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(count - 1));
  for (std::uint64_t i = 1; i < count; ++i) threads.emplace_back([&job, i] { job(i); });
  job(0);  // the caller is worker 0
  for (auto& t : threads) t.join();
}

}  // namespace mm::exec
