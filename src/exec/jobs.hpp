// Worker-count resolution for the parallel trial engine.
//
// Precedence: programmatic override (tests) > MM_JOBS environment variable >
// std::thread::hardware_concurrency(). A resolved value of 1 means "run
// inline on the calling thread" — no pool, no worker threads — which
// reproduces the historical sequential behavior exactly.
#pragma once

#include <cstddef>

namespace mm::exec {

/// Resolved degree of trial-level parallelism (always >= 1).
[[nodiscard]] std::size_t default_jobs();

/// Force the job count, ignoring MM_JOBS (0 clears the override). Intended
/// for tests; prefer ScopedJobs.
void set_jobs_override(std::size_t jobs);

/// RAII override of the job count (restores the previous override on exit).
class ScopedJobs {
 public:
  explicit ScopedJobs(std::size_t jobs);
  ~ScopedJobs();
  ScopedJobs(const ScopedJobs&) = delete;
  ScopedJobs& operator=(const ScopedJobs&) = delete;

 private:
  std::size_t previous_;
};

}  // namespace mm::exec
