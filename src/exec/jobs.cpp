#include "exec/jobs.hpp"

#include <cstdlib>
#include <thread>

namespace mm::exec {

namespace {

std::size_t& override_slot() {
  static std::size_t value = 0;
  return value;
}

std::size_t env_jobs() {
  const char* raw = std::getenv("MM_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;  // malformed: ignore
  return static_cast<std::size_t>(parsed);
}

}  // namespace

std::size_t default_jobs() {
  if (override_slot() != 0) return override_slot();
  if (const std::size_t env = env_jobs(); env != 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void set_jobs_override(std::size_t jobs) { override_slot() = jobs; }

ScopedJobs::ScopedJobs(std::size_t jobs) : previous_(override_slot()) {
  override_slot() = jobs;
}

ScopedJobs::~ScopedJobs() { override_slot() = previous_; }

}  // namespace mm::exec
