// Fixed-size worker pool dispatching a contiguous index range.
//
// The unit of work is an index i in [0, count): workers claim indices from a
// shared atomic counter, so scheduling is dynamic (good load balance for
// trials whose cost varies by seed) while the *caller* observes results only
// through per-index slots — order of completion never leaks. Jobs must not
// throw; parallel_map (the only intended user) wraps user functions and
// captures exceptions per index so a throwing trial can never wedge the
// pool.
#pragma once

#include <cstdint>
#include <functional>

namespace mm::exec {

class WorkerPool {
 public:
  /// Spawns `workers` threads that immediately start claiming indices of
  /// `job` and blocks in the destructor until all of [0, count) ran.
  /// `workers` is clamped to `count`; with workers <= 1 the job runs inline.
  static void run_indexed(std::uint64_t count, std::size_t workers,
                          const std::function<void(std::uint64_t)>& job);

  /// Co-scheduled variant: exactly `count` workers, worker i runs job(i) and
  /// nothing else, all concurrently. Required when the jobs synchronize with
  /// each other (the partitioned simulator's LPs block on each other's
  /// clocks): run_indexed's dynamic claiming could hand two such jobs to one
  /// thread and deadlock. With count <= 1 the job runs inline; otherwise the
  /// caller is worker 0 and the call blocks until every job returns.
  static void run_per_worker(std::uint64_t count,
                             const std::function<void(std::uint64_t)>& job);
};

}  // namespace mm::exec
