// One-sided RDMA verbs over Env.
//
// read / write / cas map to single register operations; fetch_add is the
// usual CAS retry loop (RDMA NICs expose it natively; we model it on CAS so
// its cost is visible). The runtime's metrics record each operation with its
// local/remote split, which the CostModel (cost_model.hpp) converts into
// modeled wall time.
#pragma once

#include <cstdint>

#include "rdma/region.hpp"
#include "runtime/env.hpp"

namespace mm::rdma {

class Verbs {
 public:
  /// One-sided read of region[offset].
  [[nodiscard]] static std::uint64_t read(runtime::Env& env, const MemoryRegion& region,
                                          std::uint32_t offset) {
    return env.read(env.reg(region.key(offset)));
  }

  /// One-sided write of region[offset].
  static void write(runtime::Env& env, const MemoryRegion& region, std::uint32_t offset,
                    std::uint64_t value) {
    env.write(env.reg(region.key(offset)), value);
  }

  /// Atomic compare-and-swap; returns the previous value (RDMA semantics).
  [[nodiscard]] static std::uint64_t cas(runtime::Env& env, const MemoryRegion& region,
                                         std::uint32_t offset, std::uint64_t expected,
                                         std::uint64_t desired) {
    return env.cas(env.reg(region.key(offset)), expected, desired);
  }

  /// Atomic fetch-and-add via CAS retry; returns the pre-add value.
  [[nodiscard]] static std::uint64_t fetch_add(runtime::Env& env, const MemoryRegion& region,
                                               std::uint32_t offset, std::uint64_t delta) {
    const RegId r = env.reg(region.key(offset));
    for (;;) {
      const std::uint64_t old = env.read(r);
      if (env.cas(r, old, old + delta) == old) return old;
      env.step();
    }
  }
};

}  // namespace mm::rdma
