// Simulated RDMA memory regions.
//
// The paper's model is motivated by RDMA: every register physically lives on
// some host, the host's own process accesses it locally, and remote
// processes reach it through one-sided NIC verbs without interrupting the
// owner (§2, §5.3). This module gives that hardware flavour a concrete API:
// a MemoryRegion is a contiguous array of 64-bit words pinned on one host,
// addressed by offset, and backed by the runtime's register table — so the
// GSM access-control and crash-survival semantics apply unchanged.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "runtime/env.hpp"

namespace mm::rdma {

/// A registered (pinned) region of `words` 64-bit words on `owner`'s host.
/// Copyable handle; all state lives in the runtime's register table.
class MemoryRegion {
 public:
  MemoryRegion(Pid owner, std::uint8_t tag, std::uint32_t words)
      : owner_(owner), tag_(tag), words_(words) {
    MM_ASSERT_MSG(words >= 1, "empty region");
  }

  [[nodiscard]] Pid owner() const noexcept { return owner_; }
  [[nodiscard]] std::uint32_t size_words() const noexcept { return words_; }

  /// Register name backing word `offset`.
  [[nodiscard]] runtime::RegKey key(std::uint32_t offset) const {
    MM_ASSERT_MSG(offset < words_, "region offset out of bounds");
    return runtime::RegKey::make(tag_, owner_, offset);
  }

 private:
  Pid owner_;
  std::uint8_t tag_;
  std::uint32_t words_;
};

}  // namespace mm::rdma
