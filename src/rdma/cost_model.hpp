// RDMA cost model: converts the runtimes' operation counts into modeled
// wall time, separating local memory accesses from one-sided remote verbs
// and from full messages (two-sided sends).
//
// Defaults follow the magnitudes reported in the RDMA systems the paper
// cites ([28] FaRM, [43] HERD): sub-100ns local access, ~2µs one-sided
// remote verb, ~5µs for a two-sided message including receiver CPU. Only the
// ratios matter for the experiments: §5.3's claim is that a leader whose
// registers are placed locally pays the ~100ns column, not the ~2µs one.
#pragma once

#include <cstdint>

#include "runtime/metrics.hpp"

namespace mm::rdma {

struct CostModel {
  double local_access_ns = 100.0;
  double remote_read_ns = 2'000.0;
  double remote_write_ns = 1'500.0;
  double message_ns = 5'000.0;

  /// Modeled communication time spent by process p (excludes compute).
  [[nodiscard]] double process_time_ns(const runtime::Metrics& m, Pid p) const {
    const std::size_t i = p.index();
    const double remote = static_cast<double>(m.remote_reads_by_proc[i]) * remote_read_ns +
                          static_cast<double>(m.remote_writes_by_proc[i]) * remote_write_ns;
    const double local_ops =
        static_cast<double>(m.reads_by_proc[i] + m.writes_by_proc[i]) -
        static_cast<double>(m.remote_reads_by_proc[i] + m.remote_writes_by_proc[i]);
    return remote + local_ops * local_access_ns +
           static_cast<double>(m.sends_by_proc[i]) * message_ns;
  }

  /// Modeled total communication time across all processes.
  [[nodiscard]] double total_time_ns(const runtime::Metrics& m) const {
    double t = 0.0;
    for (std::size_t p = 0; p < m.steps_by_proc.size(); ++p)
      t += process_time_ns(m, Pid{static_cast<std::uint32_t>(p)});
    return t;
  }
};

}  // namespace mm::rdma
