// Lease manager on top of m&m eventual leader election (§5).
//
// A group of servers uses OmegaMM to agree on a lease holder. The demo
// prints a timeline: initial election, steady state (where, per
// Theorem 5.1, NO messages flow — the leader just bumps a heartbeat
// register and everyone else reads it), a leader crash, and failover to a
// new holder. All links stay fully asynchronous throughout — only one
// process needs to be timely, and here that is the failover target.
//
//   $ ./lease_manager [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/omega.hpp"
#include "graph/generators.hpp"
#include "runtime/sim_runtime.hpp"

namespace {

mm::Pid agreed_leader(const std::vector<std::unique_ptr<mm::core::OmegaMM>>& nodes,
                      const mm::runtime::SimRuntime& rt) {
  mm::Pid agreed = mm::Pid::none();
  for (std::uint32_t p = 0; p < nodes.size(); ++p) {
    if (rt.crashed(mm::Pid{p})) continue;
    const mm::Pid l = nodes[p]->leader();
    if (l.is_none()) return mm::Pid::none();
    if (agreed.is_none()) agreed = l;
    if (l != agreed) return mm::Pid::none();
  }
  return agreed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  mm::runtime::SimConfig sim;
  sim.gsm = mm::graph::complete(n);  // §5 assumes full shared-memory connectivity
  sim.seed = seed;
  sim.timely = mm::Pid{1};  // the only process that must be timely
  sim.timely_bound = 8;
  sim.min_delay = 1;
  sim.max_delay = 200;  // links are allowed to be wildly asynchronous
  mm::runtime::SimRuntime rt{std::move(sim)};

  std::vector<std::unique_ptr<mm::core::OmegaMM>> nodes;
  for (std::size_t p = 0; p < n; ++p) {
    nodes.push_back(std::make_unique<mm::core::OmegaMM>(mm::core::OmegaMM::Config{}));
    rt.add_process([node = nodes.back().get()](mm::runtime::Env& env) { node->run(env); });
  }

  std::printf("lease group of %zu servers; only p1 is guaranteed timely\n", n);

  // Wait for the initial lease holder.
  mm::Pid holder = mm::Pid::none();
  while (holder.is_none() && rt.now() < 400'000) {
    rt.run_steps(1'000);
    holder = agreed_leader(nodes, rt);
  }
  if (holder.is_none()) {
    std::printf("no stable lease holder within budget\n");
    return 1;
  }
  std::printf("[step %8llu] lease granted to %s\n",
              static_cast<unsigned long long>(rt.now()), mm::to_string(holder).c_str());

  // Steady state: show that no messages flow while the lease is stable.
  const auto before = rt.metrics();
  rt.run_steps(20'000);
  const auto delta = rt.metrics().delta_since(before);
  std::printf("[step %8llu] steady state over 20k steps: %llu messages, "
              "lease holder wrote its heartbeat register %llu times\n",
              static_cast<unsigned long long>(rt.now()),
              static_cast<unsigned long long>(delta.msgs_sent),
              static_cast<unsigned long long>(delta.writes_by_proc[holder.index()]));

  // Crash the holder; measure failover.
  rt.crash_now(holder);
  const auto crash_step = rt.now();
  std::printf("[step %8llu] %s crashed — lease must move\n",
              static_cast<unsigned long long>(crash_step), mm::to_string(holder).c_str());

  mm::Pid next = mm::Pid::none();
  while (rt.now() < crash_step + 3'000'000) {
    rt.run_steps(2'000);
    next = agreed_leader(nodes, rt);
    if (!next.is_none() && next != holder) break;
    next = mm::Pid::none();
  }
  if (next.is_none()) {
    std::printf("failover did not complete within budget\n");
    return 1;
  }
  std::printf("[step %8llu] lease re-granted to %s after %llu steps of failover\n",
              static_cast<unsigned long long>(rt.now()), mm::to_string(next).c_str(),
              static_cast<unsigned long long>(rt.now() - crash_step));

  rt.shutdown();
  rt.rethrow_process_error();
  return 0;
}
