// The paper's opening motivation (§1): mutual exclusion without spinning.
//
// Contrasts a classic shared-memory test-and-set spin lock against the m&m
// lock, in which waiters announce themselves in a register, go to sleep, and
// are woken by a message when the holder leaves the critical section. Both
// run the same contended workload under the deterministic simulator; the
// table shows where the waiting cost goes.
//
//   $ ./mm_mutex_demo [contenders] [rounds] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.hpp"
#include "core/mutex.hpp"
#include "graph/generators.hpp"
#include "runtime/sim_runtime.hpp"

namespace {

struct Totals {
  std::uint64_t acquisitions = 0;
  std::uint64_t spin_reads = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t wait_steps = 0;
};

template <typename LockFn, typename UnlockFn>
Totals run_workload(std::size_t contenders, int rounds, std::uint64_t seed, LockFn&& lock,
                    UnlockFn&& unlock) {
  mm::runtime::SimConfig cfg;
  cfg.gsm = mm::graph::complete(contenders);
  cfg.seed = seed;
  mm::runtime::SimRuntime rt{cfg};
  std::vector<mm::core::MutexStats> stats(contenders);
  for (std::uint32_t p = 0; p < contenders; ++p) {
    rt.add_process([&, p](mm::runtime::Env& env) {
      for (int r = 0; r < rounds; ++r) {
        lock(env, stats[p]);
        if (env.stop_requested()) return;
        for (int hold = 0; hold < 5; ++hold) env.step();  // critical section
        unlock(env, stats[p]);
        env.step();
      }
    });
  }
  rt.run_until_all_done(20'000'000);
  rt.shutdown();
  rt.rethrow_process_error();
  Totals t;
  for (const auto& s : stats) {
    t.acquisitions += s.acquisitions;
    t.spin_reads += s.spin_reads;
    t.wakeups += s.wakeup_messages;
    t.wait_steps += s.wait_steps;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t contenders = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  mm::core::SpinMutex spin;
  mm::core::MnmMutex mnm;

  const Totals spin_t = run_workload(
      contenders, rounds, seed,
      [&](mm::runtime::Env& env, mm::core::MutexStats& s) { spin.lock(env, s); },
      [&](mm::runtime::Env& env, mm::core::MutexStats&) { spin.unlock(env); });
  const Totals mnm_t = run_workload(
      contenders, rounds, seed,
      [&](mm::runtime::Env& env, mm::core::MutexStats& s) { mnm.lock(env, s); },
      [&](mm::runtime::Env& env, mm::core::MutexStats& s) { mnm.unlock(env, s); });

  std::printf("%zu contenders x %d critical sections each\n\n", contenders, rounds);
  mm::Table table{{"lock", "acquisitions", "spin reads (shared mem)", "wakeup msgs",
                   "wait steps"}};
  table.row()
      .cell("sm-spin")
      .cell(spin_t.acquisitions)
      .cell(spin_t.spin_reads)
      .cell(spin_t.wakeups)
      .cell(spin_t.wait_steps);
  table.row()
      .cell("m&m-wakeup")
      .cell(mnm_t.acquisitions)
      .cell(mnm_t.spin_reads)
      .cell(mnm_t.wakeups)
      .cell(mnm_t.wait_steps);
  table.print();
  std::printf("\nwaiters under the m&m lock issue ZERO shared-memory reads while parked;\n"
              "the spin lock turns every waiting step into interconnect traffic (§1).\n");
  return 0;
}
