// Figure 1 of the paper, executable.
//
// The paper's only figure shows a concrete shared-memory graph on processes
// p, q, r, s, t and the shared-memory domain S it induces:
//
//     p — q — r — s
//              \  |
//               \ |
//                 t          (r–s, r–t, s–t form a triangle)
//
//   Sp = {p,q}, Sq = {p,q,r}, Sr = {q,r,s,t}, Ss = {r,s,t}, St = {r,s,t}
//
// "a register shared among Sr is physically kept in the host containing
//  process r, and processes q, s, t access this register over the
//  connections to r in the graph, while process p cannot access this
//  register."
//
// This program builds exactly that graph, prints the domain, lets q, s, t
// read a register hosted at r — and shows the runtime rejecting p's attempt.
#include <cstdio>
#include <string>

#include "graph/expansion.hpp"
#include "graph/graph.hpp"
#include "runtime/sim_runtime.hpp"

namespace {
constexpr std::uint8_t kTag = 0x55;
const char* kNames[] = {"p", "q", "r", "s", "t"};
}  // namespace

int main() {
  using namespace mm;

  graph::Graph gsm{5};
  const Pid p{0}, q{1}, r{2}, s{3}, t{4};
  gsm.add_edge(p, q);
  gsm.add_edge(q, r);
  gsm.add_edge(r, s);
  gsm.add_edge(r, t);
  gsm.add_edge(s, t);

  std::printf("Figure 1 shared-memory graph: %s\n\n", gsm.summary().c_str());
  for (std::uint32_t v = 0; v < 5; ++v) {
    std::printf("  S%s = {", kNames[v]);
    for (const Pid u : gsm.closed_neighborhood(Pid{v})) std::printf(" %s", kNames[u.index()]);
    std::printf(" }\n");
  }
  std::printf("\n  h(G) = %.3f, HBO tolerates f* = %zu of 5 (pure MP: 2)\n\n",
              graph::vertex_expansion_exact(gsm).h, graph::hbo_f_exact(gsm));

  runtime::SimConfig sim;
  sim.gsm = gsm;
  sim.seed = 1;
  runtime::SimRuntime rt{std::move(sim)};

  // Bodies are added in pid order: p(0), q(1), r(2), s(3), t(4).
  // r publishes a value in a register on its own host; q, s, t read it; p
  // is rejected by the access control.
  auto reader_body = [](std::uint32_t self) {
    return [self](runtime::Env& env) {
      const RegId reg = env.reg(runtime::RegKey::make(kTag, Pid{2}));
      std::uint64_t v = 0;
      while ((v = env.read(reg)) == 0) env.step();
      std::printf("  %s  -> register@r : read %llu\n", kNames[self],
                  static_cast<unsigned long long>(v));
    };
  };
  rt.add_process([](runtime::Env& env) {
    // p: must NOT be able to reach r's register.
    try {
      (void)env.read(env.reg(runtime::RegKey::make(kTag, Pid{2})));
      std::printf("  !! p read r's register — the model was violated\n");
    } catch (const ModelViolation& e) {
      std::printf("  p  -> register@r : rejected (%s)\n", e.what());
    }
  });
  rt.add_process(reader_body(1));  // q
  rt.add_process([](runtime::Env& env) {
    env.write(env.reg(runtime::RegKey::make(kTag, Pid{2})), 2018);  // r publishes
  });
  rt.add_process(reader_body(3));  // s
  rt.add_process(reader_body(4));  // t

  rt.run_until_all_done(100'000);
  rt.shutdown();
  return 0;
}
