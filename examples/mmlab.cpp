// mmlab — a command-line laboratory for the m&m model.
//
// Runs any of the repository's experiments with custom parameters, so a
// reader can poke at the model without writing code:
//
//   mmlab consensus --algo hbo --topology rreg --n 16 --d 4 --f 9
//         --crash worst --seeds 20
//   mmlab omega --algo mnm-fairlossy --n 8 --drop 0.5 --crash-leader 30000
//   mmlab graph --topology chordal --n 16
//   mmlab trace --n 4 --f 1 --steps 60
//
// Subcommands:
//   consensus  seeded termination/safety sweep for hbo | ben-or | sm
//   omega      leader-election stabilization + steady-state profile
//   graph      expansion/tolerance analysis of a topology
//   trace      tiny annotated HBO run with the event trace printed
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "core/hbo.hpp"
#include "core/trial.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "graph/smcut.hpp"
#include "runtime/sim_runtime.hpp"

namespace {

using namespace mm;

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag value, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  [[nodiscard]] std::string str(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  [[nodiscard]] std::uint64_t num(const std::string& key, std::uint64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] double real(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

graph::Graph make_topology(const std::string& name, std::size_t n, std::size_t d,
                           std::uint64_t seed) {
  if (name == "edgeless") return graph::edgeless(n);
  if (name == "ring") return graph::ring(n);
  if (name == "chordal") return graph::chordal_ring(n);
  if (name == "complete") return graph::complete(n);
  if (name == "star") return graph::star(n);
  if (name == "hypercube") {
    std::size_t dim = 0;
    while ((1ULL << (dim + 1)) <= n) ++dim;
    return graph::hypercube(dim);
  }
  if (name == "gabber-galil" || name == "gg") {
    std::size_t m = 2;
    while (m * m < n) ++m;
    return graph::gabber_galil(m);
  }
  if (name == "barbell") return graph::barbell_path(n / 2 > 1 ? n / 2 - 1 : 2, 2);
  if (name == "rreg") {
    Rng rng{seed * 131 + n * 17 + d};
    return graph::random_regular_must(n, d, rng);
  }
  std::fprintf(stderr, "unknown topology '%s'\n", name.c_str());
  std::exit(2);
}

int cmd_consensus(const Args& args) {
  const std::size_t n = args.num("n", 16);
  const std::size_t d = args.num("d", 4);
  const std::uint64_t seed = args.num("seed", 1);
  const std::string algo_name = args.str("algo", "hbo");
  const std::string topology = args.str("topology", "rreg");
  const std::string crash = args.str("crash", "worst");

  core::ConsensusTrialConfig cfg;
  cfg.gsm = make_topology(topology, n, d, seed);
  cfg.algo = algo_name == "ben-or" ? core::Algo::kBenOr
             : algo_name == "sm"   ? core::Algo::kSmConsensus
                                   : core::Algo::kHbo;
  cfg.impl = args.str("impl", "cas") == "rw" ? shm::ConsensusImpl::kRw
                                             : shm::ConsensusImpl::kCas;
  cfg.f = args.num("f", 0);
  cfg.crash_pick = crash == "none"     ? core::CrashPick::kNone
                   : crash == "random" ? core::CrashPick::kRandom
                                       : core::CrashPick::kWorstCase;
  cfg.crash_window = args.num("crash-window", 0);
  cfg.budget = args.num("budget", 4'000'000);
  cfg.max_rounds = args.num("max-rounds", 100'000);
  cfg.seed = seed;

  std::printf("GSM %s  (h=%.3f  f_thm=%zu  f*=%zu  f_imp=%zu)\n", cfg.gsm.summary().c_str(),
              graph::vertex_expansion_exact(cfg.gsm).h,
              graph::hbo_f_bound(n, graph::vertex_expansion_exact(cfg.gsm).h),
              graph::hbo_f_exact(cfg.gsm), graph::impossibility_f_threshold(cfg.gsm));

  const auto sweep = core::sweep_termination(cfg, args.num("seeds", 10));
  Table t{{"algo", "f", "crash", "termination", "mean rounds", "mean steps",
           "safety violations"}};
  t.row()
      .cell(core::to_string(cfg.algo))
      .cell(cfg.f)
      .cell(crash)
      .cell(sweep.termination_rate, 2)
      .cell(sweep.mean_decided_round, 1)
      .cell(sweep.mean_steps, 0)
      .cell(sweep.safety_violations);
  t.print();
  return sweep.safety_violations == 0 ? 0 : 1;
}

int cmd_omega(const Args& args) {
  core::OmegaTrialConfig cfg;
  cfg.n = args.num("n", 8);
  cfg.seed = args.num("seed", 1);
  const std::string algo = args.str("algo", "mnm-reliable");
  cfg.algo = algo == "mnm-fairlossy" ? core::OmegaAlgo::kMnmFairLossy
             : algo == "mp"          ? core::OmegaAlgo::kMessagePassing
                                     : core::OmegaAlgo::kMnmReliable;
  cfg.drop_prob = args.real("drop", 0.3);
  cfg.min_delay = args.num("min-delay", 1);
  cfg.max_delay = args.num("max-delay", 8);
  cfg.crash_leader_at = args.num("crash-leader", 0);
  cfg.budget = args.num("budget", 2'000'000);

  const auto res = core::run_omega_trial(cfg);
  Table t{{"algo", "stabilized", "leader", "stabilize step", "failover steps", "msgs/1k",
           "leader wr/1k", "leader rd/1k", "others rd/1k"}};
  t.row()
      .cell(core::to_string(cfg.algo))
      .cell(res.stabilized)
      .cell(to_string(res.final_leader))
      .cell(static_cast<std::uint64_t>(res.stabilization_step))
      .cell(static_cast<std::uint64_t>(res.failover_step))
      .cell(res.steady_msgs_per_1k, 2)
      .cell(res.leader_writes_per_1k, 2)
      .cell(res.leader_reads_per_1k, 2)
      .cell(res.others_reads_per_1k, 2);
  t.print();
  return res.stabilized ? 0 : 1;
}

int cmd_graph(const Args& args) {
  const std::size_t n = args.num("n", 16);
  const std::size_t d = args.num("d", 4);
  const graph::Graph g =
      make_topology(args.str("topology", "rreg"), n, d, args.num("seed", 1));
  std::printf("%s\n", g.summary().c_str());
  Table t{{"metric", "value"}};
  if (g.size() <= graph::kExactExpansionMaxN) {
    t.row().cell("h(G) exact").cell(graph::vertex_expansion_exact(g).h, 4);
    t.row().cell("f* exact").cell(graph::hbo_f_exact(g));
    t.row().cell("f_imp (Thm 4.4)").cell(graph::impossibility_f_threshold(g));
    t.row().cell("f_thm (Thm 4.3)").cell(
        graph::hbo_f_bound(g.size(), graph::vertex_expansion_exact(g).h));
  }
  t.row().cell("spectral gap (lazy)").cell(graph::lazy_walk_spectral_gap(g), 4);
  t.row().cell("h(G) spectral LB").cell(graph::vertex_expansion_spectral_lower_bound(g), 4);
  t.row().cell("MP tolerance").cell((g.size() - 1) / 2);
  t.print();
  return 0;
}

int cmd_trace(const Args& args) {
  const std::size_t n = args.num("n", 4);
  const graph::Graph gsm = graph::complete(n);
  runtime::SimConfig sim;
  sim.gsm = gsm;
  sim.seed = args.num("seed", 1);
  const std::size_t f = args.num("f", 1);
  sim.crash_at.assign(n, std::nullopt);
  for (std::size_t p = 0; p < f && p < n - 1; ++p) sim.crash_at[n - 1 - p] = 0;
  runtime::SimRuntime rt{std::move(sim)};
  rt.enable_trace(100'000);

  std::vector<std::unique_ptr<core::HboConsensus>> algs;
  for (std::uint32_t p = 0; p < n; ++p) {
    core::HboConsensus::Config hc;
    hc.gsm = &gsm;
    algs.push_back(std::make_unique<core::HboConsensus>(hc, p % 2));
    rt.add_process([alg = algs.back().get()](runtime::Env& env) { alg->run(env); });
  }
  rt.run_until_all_done(2'000'000);
  rt.shutdown();
  rt.rethrow_process_error();
  std::printf("%s", rt.dump_trace(args.num("steps", 60)).c_str());
  std::printf("\ndecisions:");
  for (std::uint32_t p = 0; p < n; ++p) std::printf(" p%u=%d", p, algs[p]->decision());
  std::printf("\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: mmlab <consensus|omega|graph|trace> [--flag value]...\n"
               "  consensus: --algo hbo|ben-or|sm --topology T --n N --d D --f F\n"
               "             --crash none|random|worst --seeds S --impl cas|rw\n"
               "  omega:     --algo mnm-reliable|mnm-fairlossy|mp --n N --drop P\n"
               "             --max-delay D --crash-leader STEP\n"
               "  graph:     --topology T --n N --d D\n"
               "  trace:     --n N --f F --steps K\n"
               "  topologies: edgeless ring chordal complete star hypercube gg rreg barbell\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args{argc, argv, 2};
  if (cmd == "consensus") return cmd_consensus(args);
  if (cmd == "omega") return cmd_omega(args);
  if (cmd == "graph") return cmd_graph(args);
  if (cmd == "trace") return cmd_trace(args);
  usage();
  return 2;
}
