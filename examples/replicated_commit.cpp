// Non-blocking atomic commitment (NBAC) over m&m consensus — a realistic
// consensus workload.
//
// n resource managers vote commit(1)/abort(0) on each transaction. Every
// manager broadcasts its vote, waits until it has all n votes or times out,
// and then proposes to consensus: 1 iff it saw ALL n votes and all were yes,
// else 0. A manager can only propose commit after seeing a complete all-yes
// vote set, so a COMMIT decision (consensus Validity) implies nobody voted
// abort — the atomic-commitment safety property. Consensus Agreement rules
// out split outcomes.
//
// The consensus is Hybrid Ben-Or on a degree-4 shared-memory graph. The
// adversary crashes MORE than half the managers mid-stream: a pure
// message-passing commit service would wedge (no majority); the m&m one
// keeps terminating — post-crash transactions correctly ABORT (dead
// participants cannot vote), but every live manager still learns the same
// outcome.
//
//   $ ./replicated_commit [transactions] [seed]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/hbo.hpp"
#include "core/tags.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "net/broadcast.hpp"
#include "runtime/sim_runtime.hpp"

namespace {

constexpr std::uint32_t kMsgVote = 40;  // private message kind for this app

struct TxnResult {
  bool all_live_decided = false;
  int outcome = -1;  // -1 undecided, 0 abort, 1 commit
  bool split = false;
};

TxnResult run_transaction(const mm::graph::Graph& gsm, const std::vector<std::uint32_t>& votes,
                          const std::vector<bool>& crashed, std::uint64_t seed) {
  const std::size_t n = gsm.size();
  mm::runtime::SimConfig sim;
  sim.gsm = gsm;
  sim.seed = seed;
  sim.crash_at.assign(n, std::nullopt);
  for (std::size_t p = 0; p < n; ++p)
    if (crashed[p]) sim.crash_at[p] = 0;
  mm::runtime::SimRuntime rt{std::move(sim)};

  std::vector<std::atomic<int>> decisions(n);
  for (auto& d : decisions) d.store(-1);

  for (std::uint32_t p = 0; p < n; ++p) {
    rt.add_process([&, p](mm::runtime::Env& env) {
      // Phase 1: exchange votes; wait for all n or a local timeout.
      mm::runtime::Message vote;
      vote.kind = kMsgVote;
      vote.value = votes[p];
      mm::net::send_to_all(env, vote);

      std::vector<int> seen(n, -1);
      std::vector<mm::runtime::Message> foreign;  // early consensus traffic
      std::vector<mm::runtime::Message> drained;
      std::size_t have = 0;
      constexpr int kTimeoutSteps = 4'000;
      for (int t = 0; t < kTimeoutSteps && have < n; ++t) {
        env.drain_inbox(drained);
        for (auto& m : drained) {
          if (m.kind == kMsgVote) {
            if (seen[m.from.index()] < 0) {
              seen[m.from.index()] = static_cast<int>(m.value);
              ++have;
            }
          } else {
            // Messages from managers that already moved on to consensus:
            // keep them for the consensus object or they are lost.
            foreign.push_back(std::move(m));
          }
        }
        env.step();
      }
      bool all_yes = have == n;
      for (int v : seen) all_yes = all_yes && v == 1;

      // Phase 2: consensus on the outcome.
      mm::core::HboConsensus::Config hc;
      hc.gsm = &gsm;
      mm::core::HboConsensus consensus{hc, all_yes ? 1u : 0u};
      consensus.seed_buffer(std::move(foreign));
      consensus.run(env);
      decisions[p].store(consensus.decision());
    });
  }
  const bool done = rt.run_until_all_done(3'000'000);
  rt.shutdown();
  rt.rethrow_process_error();

  TxnResult res;
  res.all_live_decided = done;
  for (std::size_t p = 0; p < n; ++p) {
    if (crashed[p]) continue;
    const int d = decisions[p].load();
    if (d < 0) {
      res.all_live_decided = false;
      continue;
    }
    if (res.outcome >= 0 && res.outcome != d) res.split = true;
    res.outcome = d;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const int txns = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const std::size_t n = 10;
  mm::Rng rng{seed};
  const mm::graph::Graph gsm = mm::graph::random_regular_must(n, 4, rng);
  std::printf("resource managers: %zu, GSM %s, f* = %zu (a MP commit service caps at %zu)\n\n",
              n, gsm.summary().c_str(), mm::graph::hbo_f_exact(gsm), (n - 1) / 2);

  std::vector<bool> crashed(n, false);
  for (int t = 0; t < txns; ++t) {
    if (t == 3) {
      for (std::uint32_t victim : {1u, 3u, 4u, 6u, 8u, 9u}) crashed[victim] = true;
      std::printf("-- crash wave: 6 of %zu managers down (beyond any MP majority) --\n", n);
    }
    std::vector<std::uint32_t> votes(n, 1);
    if (t == 1) votes[5] = 0;  // one abort vote on transaction 1

    const TxnResult res =
        run_transaction(gsm, votes, crashed, seed * 1000 + static_cast<std::uint64_t>(t));
    if (res.split) {
      std::printf("txn %d: SPLIT OUTCOME — agreement violated (bug!)\n", t);
      return 1;
    }
    if (!res.all_live_decided) {
      std::printf("txn %d: undecided within budget\n", t);
      continue;
    }
    std::printf("txn %d: %-6s at every live manager\n", t, res.outcome == 1 ? "COMMIT" : "ABORT");
  }
  return 0;
}
