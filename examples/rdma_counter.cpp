// Shared counters over simulated RDMA verbs, under real threads.
//
// A cluster of hosts increments a counter pinned on host 0 with one-sided
// fetch-add verbs. The run demonstrates (a) the Verbs facade over the m&m
// register layer, (b) exact atomicity under real concurrency, and (c) the
// locality split from §5.3: host 0's accesses are local, everyone else pays
// the remote-verb cost — quantified with the RDMA cost model.
//
//   $ ./rdma_counter [hosts] [increments] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "graph/generators.hpp"
#include "rdma/cost_model.hpp"
#include "rdma/region.hpp"
#include "rdma/verbs.hpp"
#include "runtime/thread_runtime.hpp"

int main(int argc, char** argv) {
  const std::size_t hosts = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::uint64_t increments = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  mm::runtime::ThreadRuntime::Config cfg;
  cfg.gsm = mm::graph::complete(hosts);
  cfg.seed = seed;
  mm::runtime::ThreadRuntime rt{cfg};

  constexpr std::uint8_t kCounterTag = 0x31;
  std::atomic<std::uint64_t> final_value{0};
  std::atomic<std::size_t> done{0};

  for (std::uint32_t h = 0; h < hosts; ++h) {
    rt.add_process([&, h](mm::runtime::Env& env) {
      const mm::rdma::MemoryRegion counter{mm::Pid{0}, kCounterTag, 1};
      (void)h;
      for (std::uint64_t i = 0; i < increments; ++i)
        (void)mm::rdma::Verbs::fetch_add(env, counter, 0, 1);
      done.fetch_add(1);
      // Barrier, then read the settled value (identical on every host).
      while (done.load() < hosts) env.step();
      final_value.store(mm::rdma::Verbs::read(env, counter, 0));
    });
  }
  rt.start();
  rt.join_all();
  rt.rethrow_process_error();

  const auto metrics = rt.metrics_snapshot();
  const mm::rdma::CostModel model;

  std::printf("counter pinned on host 0; %zu hosts x %llu fetch-adds\n", hosts,
              static_cast<unsigned long long>(increments));
  std::printf("final value: %llu (expected %llu)\n\n",
              static_cast<unsigned long long>(final_value.load()),
              static_cast<unsigned long long>(hosts * increments));

  mm::Table table{{"host", "reads", "remote reads", "CAS ops share", "modeled comm time (ms)"}};
  for (std::uint32_t h = 0; h < hosts; ++h) {
    table.row()
        .cell("h" + std::to_string(h))
        .cell(metrics.reads_by_proc[h])
        .cell(metrics.remote_reads_by_proc[h])
        .cell(h == 0 ? "local" : "remote")
        .cell(model.process_time_ns(metrics, mm::Pid{h}) / 1e6, 2);
  }
  table.print();
  std::printf("\nhost 0 owns the counter and pays ~%.0fns per access; remote hosts pay the\n"
              "one-sided verb cost — the placement argument behind §5.3's local leader.\n",
              model.local_access_ns);
  return final_value.load() == hosts * increments ? 0 : 1;
}
