// Replicated key-value store over the m&m replicated log.
//
// Each replica submits PUT commands; every command goes through one slot of
// the replicated log (multivalued consensus over HBO), so all replicas apply
// the same PUTs in the same order and end with identical stores — even after
// a crash wave takes down more replicas than any message-passing replication
// protocol tolerates.
//
// Command word (16 bits): [key : 4][value : 8][writer : 4].
//
//   $ ./replicated_kv [seed]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "core/rsm.hpp"
#include "graph/generators.hpp"
#include "runtime/sim_runtime.hpp"

namespace {

std::uint64_t make_put(std::uint64_t key, std::uint64_t value, std::uint64_t writer) {
  return ((key & 0xf) << 12) | ((value & 0xff) << 4) | (writer & 0xf);
}

struct Put {
  std::uint64_t key, value, writer;
};
Put parse_put(std::uint64_t cmd) {
  return Put{(cmd >> 12) & 0xf, (cmd >> 4) & 0xff, cmd & 0xf};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;
  const std::size_t n = 6;
  constexpr std::size_t kSlots = 6;

  const mm::graph::Graph gsm = mm::graph::complete(n);
  mm::runtime::SimConfig sim;
  sim.gsm = gsm;
  sim.seed = seed;
  // Crash 4 of 6 replicas at step 3000 — mid-log.
  sim.crash_at.assign(n, std::nullopt);
  for (std::uint32_t victim : {1u, 2u, 4u, 5u}) sim.crash_at[victim] = 3'000;
  mm::runtime::SimRuntime rt{std::move(sim)};

  std::vector<std::map<std::uint64_t, std::uint64_t>> stores(n);
  std::vector<std::unique_ptr<mm::core::LogReplica>> replicas;
  for (std::size_t p = 0; p < n; ++p) {
    mm::core::LogReplica::Config rc;
    rc.gsm = &gsm;
    rc.command_bits = 16;
    rc.max_slots = kSlots;
    rc.apply = [&stores, p](std::uint64_t, std::uint64_t cmd) {
      const Put put = parse_put(cmd);
      stores[p][put.key] = put.value;
    };
    replicas.push_back(std::make_unique<mm::core::LogReplica>(rc));
    rt.add_process([replica = replicas.back().get(), p](mm::runtime::Env& env) {
      for (std::uint64_t s = 0; s < kSlots; ++s) {
        // Each replica proposes a PUT to key s%4 with its own signature.
        const std::uint64_t cmd = make_put(s % 4, 10 * (p + 1) + s, p);
        if (!replica->run_slot(env, cmd).has_value()) return;
      }
    });
  }

  std::printf("6-replica KV store, %zu log slots; 4 replicas crash at step 3000 (mid-log)\n\n",
              kSlots);
  rt.run_until_all_done(40'000'000);
  rt.shutdown();
  rt.rethrow_process_error();

  // Report the decided log from a surviving full replica.
  const auto& log = replicas[0]->log();
  std::printf("decided log (%zu slots):\n", log.size());
  for (std::size_t s = 0; s < log.size(); ++s) {
    const Put put = parse_put(log[s]);
    std::printf("  slot %zu: PUT k%llu = %llu (proposed by replica %llu)\n", s,
                static_cast<unsigned long long>(put.key),
                static_cast<unsigned long long>(put.value),
                static_cast<unsigned long long>(put.writer));
  }

  std::printf("\nfinal stores:\n");
  bool all_equal = true;
  for (std::size_t p = 0; p < n; ++p) {
    std::printf("  replica %zu (%s, %zu cmds applied): {", p,
                rt.crashed(mm::Pid{static_cast<std::uint32_t>(p)}) ? "crashed" : "alive",
                replicas[p]->log().size());
    for (const auto& [k, v] : stores[p])
      std::printf(" k%llu=%llu", static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(v));
    std::printf(" }\n");
    // Prefix consistency: crashed replicas hold a prefix of the full log.
    for (std::size_t s = 0; s < replicas[p]->log().size(); ++s)
      all_equal = all_equal && replicas[p]->log()[s] == log[s];
  }
  std::printf("\nprefix agreement across all replicas: %s\n", all_equal ? "yes" : "VIOLATED");
  return all_equal ? 0 : 1;
}
