// Quickstart: run Hybrid Ben-Or consensus on an 8-process m&m system whose
// shared-memory graph is a degree-3 chordal ring, with 4 of 8 processes
// crashing — more than any pure message-passing algorithm could survive.
//
//   $ ./quickstart [seed]
//
// Walks through the public API: build a GSM, configure the deterministic
// runtime, attach one HboConsensus per process, run, inspect decisions.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/hbo.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "runtime/sim_runtime.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. The shared-memory graph: every process shares registers with its
  //    GSM neighbors only (degree 3 here — this is what scales, §3).
  const mm::graph::Graph gsm = mm::graph::chordal_ring(8);
  const auto expansion = mm::graph::vertex_expansion_exact(gsm);
  std::printf("GSM: %s  h(G)=%.3f\n", gsm.summary().c_str(), expansion.h);
  std::printf("Theorem 4.3 bound: tolerates f <= %zu of n=8 (pure MP caps at 3)\n",
              mm::graph::hbo_f_bound(8, expansion.h));
  std::printf("exact worst-case tolerance f* = %zu\n\n", mm::graph::hbo_f_exact(gsm));

  // 2. A deterministic m&m runtime: reliable asynchronous links + the GSM.
  //    Crash processes 1, 3, 5, 6 at step 0 — half the system.
  mm::runtime::SimConfig sim;
  sim.gsm = gsm;
  sim.seed = seed;
  sim.crash_at.assign(8, std::nullopt);
  for (std::uint32_t victim : {1u, 3u, 5u, 6u}) sim.crash_at[victim] = 0;
  mm::runtime::SimRuntime rt{std::move(sim)};

  // 3. One HBO instance per process; inputs alternate 0/1.
  std::vector<std::unique_ptr<mm::core::HboConsensus>> algs;
  for (std::uint32_t p = 0; p < 8; ++p) {
    mm::core::HboConsensus::Config hc;
    hc.gsm = &gsm;
    algs.push_back(std::make_unique<mm::core::HboConsensus>(hc, p % 2));
    rt.add_process([alg = algs.back().get()](mm::runtime::Env& env) { alg->run(env); });
  }

  // 4. Run to completion and report.
  const bool done = rt.run_until_all_done(2'000'000);
  rt.shutdown();
  rt.rethrow_process_error();

  std::printf("run %s after %llu steps; %llu messages, %llu register ops\n",
              done ? "completed" : "hit budget",
              static_cast<unsigned long long>(rt.now()),
              static_cast<unsigned long long>(rt.metrics().msgs_sent),
              static_cast<unsigned long long>(rt.metrics().reg_reads +
                                              rt.metrics().reg_writes +
                                              rt.metrics().reg_cas_ops));
  for (std::uint32_t p = 0; p < 8; ++p) {
    if (rt.crashed(mm::Pid{p})) {
      std::printf("  p%u: crashed (input %u)\n", p, algs[p]->initial_value());
    } else {
      std::printf("  p%u: decided %d in round %llu (input %u)\n", p, algs[p]->decision(),
                  static_cast<unsigned long long>(algs[p]->decided_round()),
                  algs[p]->initial_value());
    }
  }
  return done ? 0 : 1;
}
