# Empty dependencies file for mm_tests.
# This may be replaced when dependencies are built.
