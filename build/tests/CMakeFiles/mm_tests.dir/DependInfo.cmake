
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abd.cpp" "tests/CMakeFiles/mm_tests.dir/test_abd.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_abd.cpp.o.d"
  "/root/repo/tests/test_bracha.cpp" "tests/CMakeFiles/mm_tests.dir/test_bracha.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_bracha.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/mm_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_consensus.cpp" "tests/CMakeFiles/mm_tests.dir/test_consensus.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_consensus.cpp.o.d"
  "/root/repo/tests/test_coverage.cpp" "tests/CMakeFiles/mm_tests.dir/test_coverage.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_coverage.cpp.o.d"
  "/root/repo/tests/test_expansion.cpp" "tests/CMakeFiles/mm_tests.dir/test_expansion.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_expansion.cpp.o.d"
  "/root/repo/tests/test_explore.cpp" "tests/CMakeFiles/mm_tests.dir/test_explore.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_explore.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/mm_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/mm_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_linearizability.cpp" "tests/CMakeFiles/mm_tests.dir/test_linearizability.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_linearizability.cpp.o.d"
  "/root/repo/tests/test_memory_failure.cpp" "tests/CMakeFiles/mm_tests.dir/test_memory_failure.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_memory_failure.cpp.o.d"
  "/root/repo/tests/test_multi_consensus.cpp" "tests/CMakeFiles/mm_tests.dir/test_multi_consensus.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_multi_consensus.cpp.o.d"
  "/root/repo/tests/test_mutex.cpp" "tests/CMakeFiles/mm_tests.dir/test_mutex.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_mutex.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/mm_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_omega.cpp" "tests/CMakeFiles/mm_tests.dir/test_omega.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_omega.cpp.o.d"
  "/root/repo/tests/test_omega_paxos.cpp" "tests/CMakeFiles/mm_tests.dir/test_omega_paxos.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_omega_paxos.cpp.o.d"
  "/root/repo/tests/test_paxos_log.cpp" "tests/CMakeFiles/mm_tests.dir/test_paxos_log.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_paxos_log.cpp.o.d"
  "/root/repo/tests/test_rdma.cpp" "tests/CMakeFiles/mm_tests.dir/test_rdma.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_rdma.cpp.o.d"
  "/root/repo/tests/test_runtime_sim.cpp" "tests/CMakeFiles/mm_tests.dir/test_runtime_sim.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_runtime_sim.cpp.o.d"
  "/root/repo/tests/test_runtime_thread.cpp" "tests/CMakeFiles/mm_tests.dir/test_runtime_thread.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_runtime_thread.cpp.o.d"
  "/root/repo/tests/test_shm.cpp" "tests/CMakeFiles/mm_tests.dir/test_shm.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_shm.cpp.o.d"
  "/root/repo/tests/test_smcut.cpp" "tests/CMakeFiles/mm_tests.dir/test_smcut.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_smcut.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/mm_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_snapshot.cpp" "tests/CMakeFiles/mm_tests.dir/test_snapshot.cpp.o" "gcc" "tests/CMakeFiles/mm_tests.dir/test_snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/mm_check.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/mm_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
