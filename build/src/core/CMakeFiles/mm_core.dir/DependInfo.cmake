
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abd.cpp" "src/core/CMakeFiles/mm_core.dir/abd.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/abd.cpp.o.d"
  "/root/repo/src/core/ben_or.cpp" "src/core/CMakeFiles/mm_core.dir/ben_or.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/ben_or.cpp.o.d"
  "/root/repo/src/core/bracha.cpp" "src/core/CMakeFiles/mm_core.dir/bracha.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/bracha.cpp.o.d"
  "/root/repo/src/core/hbo.cpp" "src/core/CMakeFiles/mm_core.dir/hbo.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/hbo.cpp.o.d"
  "/root/repo/src/core/multi_consensus.cpp" "src/core/CMakeFiles/mm_core.dir/multi_consensus.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/multi_consensus.cpp.o.d"
  "/root/repo/src/core/mutex.cpp" "src/core/CMakeFiles/mm_core.dir/mutex.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/mutex.cpp.o.d"
  "/root/repo/src/core/omega.cpp" "src/core/CMakeFiles/mm_core.dir/omega.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/omega.cpp.o.d"
  "/root/repo/src/core/omega_mp.cpp" "src/core/CMakeFiles/mm_core.dir/omega_mp.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/omega_mp.cpp.o.d"
  "/root/repo/src/core/omega_paxos.cpp" "src/core/CMakeFiles/mm_core.dir/omega_paxos.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/omega_paxos.cpp.o.d"
  "/root/repo/src/core/paxos_log.cpp" "src/core/CMakeFiles/mm_core.dir/paxos_log.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/paxos_log.cpp.o.d"
  "/root/repo/src/core/rsm.cpp" "src/core/CMakeFiles/mm_core.dir/rsm.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/rsm.cpp.o.d"
  "/root/repo/src/core/sm_consensus.cpp" "src/core/CMakeFiles/mm_core.dir/sm_consensus.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/sm_consensus.cpp.o.d"
  "/root/repo/src/core/trial.cpp" "src/core/CMakeFiles/mm_core.dir/trial.cpp.o" "gcc" "src/core/CMakeFiles/mm_core.dir/trial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/mm_shm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
