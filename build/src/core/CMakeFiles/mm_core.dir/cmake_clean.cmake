file(REMOVE_RECURSE
  "CMakeFiles/mm_core.dir/abd.cpp.o"
  "CMakeFiles/mm_core.dir/abd.cpp.o.d"
  "CMakeFiles/mm_core.dir/ben_or.cpp.o"
  "CMakeFiles/mm_core.dir/ben_or.cpp.o.d"
  "CMakeFiles/mm_core.dir/bracha.cpp.o"
  "CMakeFiles/mm_core.dir/bracha.cpp.o.d"
  "CMakeFiles/mm_core.dir/hbo.cpp.o"
  "CMakeFiles/mm_core.dir/hbo.cpp.o.d"
  "CMakeFiles/mm_core.dir/multi_consensus.cpp.o"
  "CMakeFiles/mm_core.dir/multi_consensus.cpp.o.d"
  "CMakeFiles/mm_core.dir/mutex.cpp.o"
  "CMakeFiles/mm_core.dir/mutex.cpp.o.d"
  "CMakeFiles/mm_core.dir/omega.cpp.o"
  "CMakeFiles/mm_core.dir/omega.cpp.o.d"
  "CMakeFiles/mm_core.dir/omega_mp.cpp.o"
  "CMakeFiles/mm_core.dir/omega_mp.cpp.o.d"
  "CMakeFiles/mm_core.dir/omega_paxos.cpp.o"
  "CMakeFiles/mm_core.dir/omega_paxos.cpp.o.d"
  "CMakeFiles/mm_core.dir/paxos_log.cpp.o"
  "CMakeFiles/mm_core.dir/paxos_log.cpp.o.d"
  "CMakeFiles/mm_core.dir/rsm.cpp.o"
  "CMakeFiles/mm_core.dir/rsm.cpp.o.d"
  "CMakeFiles/mm_core.dir/sm_consensus.cpp.o"
  "CMakeFiles/mm_core.dir/sm_consensus.cpp.o.d"
  "CMakeFiles/mm_core.dir/trial.cpp.o"
  "CMakeFiles/mm_core.dir/trial.cpp.o.d"
  "libmm_core.a"
  "libmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
