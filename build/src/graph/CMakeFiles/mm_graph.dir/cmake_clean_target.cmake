file(REMOVE_RECURSE
  "libmm_graph.a"
)
