file(REMOVE_RECURSE
  "CMakeFiles/mm_graph.dir/expansion.cpp.o"
  "CMakeFiles/mm_graph.dir/expansion.cpp.o.d"
  "CMakeFiles/mm_graph.dir/generators.cpp.o"
  "CMakeFiles/mm_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mm_graph.dir/graph.cpp.o"
  "CMakeFiles/mm_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mm_graph.dir/smcut.cpp.o"
  "CMakeFiles/mm_graph.dir/smcut.cpp.o.d"
  "libmm_graph.a"
  "libmm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
