# Empty dependencies file for mm_graph.
# This may be replaced when dependencies are built.
