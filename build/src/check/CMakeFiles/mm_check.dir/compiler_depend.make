# Empty compiler generated dependencies file for mm_check.
# This may be replaced when dependencies are built.
