file(REMOVE_RECURSE
  "libmm_check.a"
)
