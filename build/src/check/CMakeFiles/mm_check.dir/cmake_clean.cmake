file(REMOVE_RECURSE
  "CMakeFiles/mm_check.dir/explore.cpp.o"
  "CMakeFiles/mm_check.dir/explore.cpp.o.d"
  "CMakeFiles/mm_check.dir/linearizability.cpp.o"
  "CMakeFiles/mm_check.dir/linearizability.cpp.o.d"
  "libmm_check.a"
  "libmm_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
