file(REMOVE_RECURSE
  "libmm_runtime.a"
)
