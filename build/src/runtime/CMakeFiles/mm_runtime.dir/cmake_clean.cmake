file(REMOVE_RECURSE
  "CMakeFiles/mm_runtime.dir/sim_runtime.cpp.o"
  "CMakeFiles/mm_runtime.dir/sim_runtime.cpp.o.d"
  "CMakeFiles/mm_runtime.dir/thread_runtime.cpp.o"
  "CMakeFiles/mm_runtime.dir/thread_runtime.cpp.o.d"
  "libmm_runtime.a"
  "libmm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
