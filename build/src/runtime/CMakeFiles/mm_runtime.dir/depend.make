# Empty dependencies file for mm_runtime.
# This may be replaced when dependencies are built.
