file(REMOVE_RECURSE
  "CMakeFiles/mm_shm.dir/adopt_commit.cpp.o"
  "CMakeFiles/mm_shm.dir/adopt_commit.cpp.o.d"
  "CMakeFiles/mm_shm.dir/consensus_object.cpp.o"
  "CMakeFiles/mm_shm.dir/consensus_object.cpp.o.d"
  "CMakeFiles/mm_shm.dir/packed_state.cpp.o"
  "CMakeFiles/mm_shm.dir/packed_state.cpp.o.d"
  "CMakeFiles/mm_shm.dir/snapshot.cpp.o"
  "CMakeFiles/mm_shm.dir/snapshot.cpp.o.d"
  "libmm_shm.a"
  "libmm_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
