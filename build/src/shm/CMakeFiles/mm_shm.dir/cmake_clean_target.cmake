file(REMOVE_RECURSE
  "libmm_shm.a"
)
