
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shm/adopt_commit.cpp" "src/shm/CMakeFiles/mm_shm.dir/adopt_commit.cpp.o" "gcc" "src/shm/CMakeFiles/mm_shm.dir/adopt_commit.cpp.o.d"
  "/root/repo/src/shm/consensus_object.cpp" "src/shm/CMakeFiles/mm_shm.dir/consensus_object.cpp.o" "gcc" "src/shm/CMakeFiles/mm_shm.dir/consensus_object.cpp.o.d"
  "/root/repo/src/shm/packed_state.cpp" "src/shm/CMakeFiles/mm_shm.dir/packed_state.cpp.o" "gcc" "src/shm/CMakeFiles/mm_shm.dir/packed_state.cpp.o.d"
  "/root/repo/src/shm/snapshot.cpp" "src/shm/CMakeFiles/mm_shm.dir/snapshot.cpp.o" "gcc" "src/shm/CMakeFiles/mm_shm.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
