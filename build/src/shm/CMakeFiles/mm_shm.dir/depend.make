# Empty dependencies file for mm_shm.
# This may be replaced when dependencies are built.
