file(REMOVE_RECURSE
  "CMakeFiles/mm_net.dir/broadcast.cpp.o"
  "CMakeFiles/mm_net.dir/broadcast.cpp.o.d"
  "CMakeFiles/mm_net.dir/msg_buffer.cpp.o"
  "CMakeFiles/mm_net.dir/msg_buffer.cpp.o.d"
  "libmm_net.a"
  "libmm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
