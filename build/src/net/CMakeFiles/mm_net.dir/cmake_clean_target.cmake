file(REMOVE_RECURSE
  "libmm_net.a"
)
