# Empty compiler generated dependencies file for mm_net.
# This may be replaced when dependencies are built.
