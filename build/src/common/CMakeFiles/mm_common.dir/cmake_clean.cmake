file(REMOVE_RECURSE
  "CMakeFiles/mm_common.dir/log.cpp.o"
  "CMakeFiles/mm_common.dir/log.cpp.o.d"
  "CMakeFiles/mm_common.dir/rng.cpp.o"
  "CMakeFiles/mm_common.dir/rng.cpp.o.d"
  "CMakeFiles/mm_common.dir/stats.cpp.o"
  "CMakeFiles/mm_common.dir/stats.cpp.o.d"
  "CMakeFiles/mm_common.dir/table.cpp.o"
  "CMakeFiles/mm_common.dir/table.cpp.o.d"
  "libmm_common.a"
  "libmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
