file(REMOVE_RECURSE
  "libmm_common.a"
)
