file(REMOVE_RECURSE
  "CMakeFiles/replicated_commit.dir/replicated_commit.cpp.o"
  "CMakeFiles/replicated_commit.dir/replicated_commit.cpp.o.d"
  "replicated_commit"
  "replicated_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
