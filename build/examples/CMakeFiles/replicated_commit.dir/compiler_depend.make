# Empty compiler generated dependencies file for replicated_commit.
# This may be replaced when dependencies are built.
