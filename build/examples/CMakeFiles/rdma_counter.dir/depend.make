# Empty dependencies file for rdma_counter.
# This may be replaced when dependencies are built.
