file(REMOVE_RECURSE
  "CMakeFiles/rdma_counter.dir/rdma_counter.cpp.o"
  "CMakeFiles/rdma_counter.dir/rdma_counter.cpp.o.d"
  "rdma_counter"
  "rdma_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
