file(REMOVE_RECURSE
  "CMakeFiles/mmlab.dir/mmlab.cpp.o"
  "CMakeFiles/mmlab.dir/mmlab.cpp.o.d"
  "mmlab"
  "mmlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
