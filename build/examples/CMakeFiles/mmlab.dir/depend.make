# Empty dependencies file for mmlab.
# This may be replaced when dependencies are built.
