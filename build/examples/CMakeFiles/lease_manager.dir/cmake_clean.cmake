file(REMOVE_RECURSE
  "CMakeFiles/lease_manager.dir/lease_manager.cpp.o"
  "CMakeFiles/lease_manager.dir/lease_manager.cpp.o.d"
  "lease_manager"
  "lease_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
