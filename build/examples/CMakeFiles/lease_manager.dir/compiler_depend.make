# Empty compiler generated dependencies file for lease_manager.
# This may be replaced when dependencies are built.
