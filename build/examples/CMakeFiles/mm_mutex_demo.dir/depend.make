# Empty dependencies file for mm_mutex_demo.
# This may be replaced when dependencies are built.
