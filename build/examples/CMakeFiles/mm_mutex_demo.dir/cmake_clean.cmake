file(REMOVE_RECURSE
  "CMakeFiles/mm_mutex_demo.dir/mm_mutex_demo.cpp.o"
  "CMakeFiles/mm_mutex_demo.dir/mm_mutex_demo.cpp.o.d"
  "mm_mutex_demo"
  "mm_mutex_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_mutex_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
