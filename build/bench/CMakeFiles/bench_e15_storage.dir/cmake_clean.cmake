file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_storage.dir/bench_e15_storage.cpp.o"
  "CMakeFiles/bench_e15_storage.dir/bench_e15_storage.cpp.o.d"
  "bench_e15_storage"
  "bench_e15_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
