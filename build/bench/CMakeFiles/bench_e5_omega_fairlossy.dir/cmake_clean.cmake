file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_omega_fairlossy.dir/bench_e5_omega_fairlossy.cpp.o"
  "CMakeFiles/bench_e5_omega_fairlossy.dir/bench_e5_omega_fairlossy.cpp.o.d"
  "bench_e5_omega_fairlossy"
  "bench_e5_omega_fairlossy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_omega_fairlossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
