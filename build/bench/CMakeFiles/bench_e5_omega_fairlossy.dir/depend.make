# Empty dependencies file for bench_e5_omega_fairlossy.
# This may be replaced when dependencies are built.
