# Empty dependencies file for bench_e6_synchrony.
# This may be replaced when dependencies are built.
