file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_synchrony.dir/bench_e6_synchrony.cpp.o"
  "CMakeFiles/bench_e6_synchrony.dir/bench_e6_synchrony.cpp.o.d"
  "bench_e6_synchrony"
  "bench_e6_synchrony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_synchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
