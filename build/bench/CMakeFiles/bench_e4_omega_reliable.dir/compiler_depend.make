# Empty compiler generated dependencies file for bench_e4_omega_reliable.
# This may be replaced when dependencies are built.
