file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_omega_reliable.dir/bench_e4_omega_reliable.cpp.o"
  "CMakeFiles/bench_e4_omega_reliable.dir/bench_e4_omega_reliable.cpp.o.d"
  "bench_e4_omega_reliable"
  "bench_e4_omega_reliable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_omega_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
