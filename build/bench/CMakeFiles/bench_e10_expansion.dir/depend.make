# Empty dependencies file for bench_e10_expansion.
# This may be replaced when dependencies are built.
