file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_expansion.dir/bench_e10_expansion.cpp.o"
  "CMakeFiles/bench_e10_expansion.dir/bench_e10_expansion.cpp.o.d"
  "bench_e10_expansion"
  "bench_e10_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
