# Empty dependencies file for bench_e3_impossibility.
# This may be replaced when dependencies are built.
