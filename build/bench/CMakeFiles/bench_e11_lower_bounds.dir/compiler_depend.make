# Empty compiler generated dependencies file for bench_e11_lower_bounds.
# This may be replaced when dependencies are built.
