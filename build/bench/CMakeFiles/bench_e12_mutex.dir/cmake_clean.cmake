file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_mutex.dir/bench_e12_mutex.cpp.o"
  "CMakeFiles/bench_e12_mutex.dir/bench_e12_mutex.cpp.o.d"
  "bench_e12_mutex"
  "bench_e12_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
