# Empty compiler generated dependencies file for bench_e12_mutex.
# This may be replaced when dependencies are built.
