file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_paxos.dir/bench_e14_paxos.cpp.o"
  "CMakeFiles/bench_e14_paxos.dir/bench_e14_paxos.cpp.o.d"
  "bench_e14_paxos"
  "bench_e14_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
