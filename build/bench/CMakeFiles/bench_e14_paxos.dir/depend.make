# Empty dependencies file for bench_e14_paxos.
# This may be replaced when dependencies are built.
