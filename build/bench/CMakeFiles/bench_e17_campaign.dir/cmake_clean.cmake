file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_campaign.dir/bench_e17_campaign.cpp.o"
  "CMakeFiles/bench_e17_campaign.dir/bench_e17_campaign.cpp.o.d"
  "bench_e17_campaign"
  "bench_e17_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
