
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_model_comparison.cpp" "bench/CMakeFiles/bench_e2_model_comparison.dir/bench_e2_model_comparison.cpp.o" "gcc" "bench/CMakeFiles/bench_e2_model_comparison.dir/bench_e2_model_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/mm_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
