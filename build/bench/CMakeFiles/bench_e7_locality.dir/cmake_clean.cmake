file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_locality.dir/bench_e7_locality.cpp.o"
  "CMakeFiles/bench_e7_locality.dir/bench_e7_locality.cpp.o.d"
  "bench_e7_locality"
  "bench_e7_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
