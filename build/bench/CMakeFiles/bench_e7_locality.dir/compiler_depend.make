# Empty compiler generated dependencies file for bench_e7_locality.
# This may be replaced when dependencies are built.
