file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_rsm.dir/bench_e13_rsm.cpp.o"
  "CMakeFiles/bench_e13_rsm.dir/bench_e13_rsm.cpp.o.d"
  "bench_e13_rsm"
  "bench_e13_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
