#!/usr/bin/env bash
# Bench smoke: proves the perf tooling hasn't bit-rotted.
#
# Builds (or reuses) a RelWithDebInfo tree, runs a trimmed bench_micro plus
# one fast experiment bench that exercises the parallel trial engine, and
# validates that BENCH_runtime.json was produced and is well-formed with the
# expected fields. Wired into CTest under the "smoke" label:
#     ctest -L smoke
#
# Env:
#   BUILD_DIR   build tree to use (default: build; configured if missing)
#   MM_JOBS     trial-engine worker count (default: hardware concurrency)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j --target bench_micro bench_e9_ablation

json="$BUILD_DIR/BENCH_runtime_smoke.json"
rm -f "$json"

echo "== bench_micro (quick) =="
MM_BENCH_QUICK=1 MM_BENCH_JSON="$json" \
  "$BUILD_DIR/bench/bench_micro" --benchmark_filter='BM_SimStep$|BM_TrialSweep' \
  --benchmark_min_time=0.05

echo "== bench_e9_ablation =="
"$BUILD_DIR/bench/bench_e9_ablation" > /dev/null

echo "== validating $json =="
[ -s "$json" ] || { echo "FAIL: $json missing or empty"; exit 1; }

required_keys="schema jobs hardware_concurrency backend_default sim_steps_per_sec sim_steps_per_sec_coroutine sim_steps_per_sec_thread handoffs_per_sec partitions sim_steps_per_sec_partitioned intra_run_speedup cross_partition_msgs_per_sec alloc_counting_active allocs_per_step bytes_per_step trials_per_sec_seq trials_per_sec_par parallel_speedup deterministic backend_invariant"
if command -v jq > /dev/null 2>&1; then
  for key in $required_keys; do
    jq -e --arg k "$key" 'has($k)' "$json" > /dev/null \
      || { echo "FAIL: $json lacks key '$key'"; exit 1; }
  done
  jq -e '.deterministic == true' "$json" > /dev/null \
    || { echo "FAIL: parallel sweep was not bit-identical to sequential"; exit 1; }
  jq -e '.backend_invariant == true' "$json" > /dev/null \
    || { echo "FAIL: coroutine and thread backends diverged"; exit 1; }
  jq -e '.alloc_counting_active == false or .allocs_per_step == 0' "$json" > /dev/null \
    || { echo "FAIL: steady-state steps allocated ($(jq -r '.allocs_per_step' "$json")/step)"; exit 1; }
  jobs=$(jq -r '.jobs' "$json")
  hc=$(jq -r '.hardware_concurrency' "$json")
  speedup=$(jq -r '.parallel_speedup' "$json")
  echo "jobs=$jobs hardware_concurrency=$hc parallel_speedup=$speedup"
  # Warn-only throughput floor against the committed record: quick-mode runs
  # on loaded CI boxes are noisy, so a dip is a flag to re-measure, not a
  # failure. 0.5x is far below any plausible noise band.
  if [ -f BENCH_runtime.json ]; then
    committed=$(jq -r '.sim_steps_per_sec' BENCH_runtime.json)
    current=$(jq -r '.sim_steps_per_sec' "$json")
    awk -v cur="$current" -v ref="$committed" 'BEGIN { exit !(cur < 0.5 * ref) }' \
      && echo "WARN: sim_steps_per_sec=$current is <50% of committed $committed — re-measure on an idle machine"
  fi
  # A parallel speedup near 1.0 is only suspicious when there are cores to
  # spare; on a single-core machine it is the expected outcome.
  if [ "$hc" -gt 1 ] && [ "$jobs" -gt 1 ]; then
    awk -v s="$speedup" 'BEGIN { exit !(s < 1.2) }' \
      && echo "WARN: parallel_speedup=$speedup despite $hc cores ($jobs jobs)"
  fi
  # Partitioned intra-run speedup: a hard floor where cores exist to deliver
  # it, a warning where they don't (K LPs on < 4 threads mostly timeshare).
  intra=$(jq -r '.intra_run_speedup' "$json")
  parts=$(jq -r '.partitions' "$json")
  echo "partitions=$parts intra_run_speedup=$intra"
  if [ "$hc" -ge 4 ]; then
    awk -v s="$intra" 'BEGIN { exit !(s < 1.5) }' \
      && { echo "FAIL: intra_run_speedup=$intra < 1.5 despite $hc cores ($parts partitions)"; exit 1; }
  else
    awk -v s="$intra" 'BEGIN { exit !(s < 1.0) }' \
      && echo "WARN: intra_run_speedup=$intra on $hc core(s) — expected ~1.0, re-measure on a multi-core machine"
  fi
elif command -v python3 > /dev/null 2>&1; then
  python3 - "$json" $required_keys <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
missing = [k for k in sys.argv[2:] if k not in doc]
if missing:
    sys.exit(f"FAIL: missing keys {missing}")
if doc["deterministic"] is not True:
    sys.exit("FAIL: parallel sweep was not bit-identical to sequential")
if doc["backend_invariant"] is not True:
    sys.exit("FAIL: coroutine and thread backends diverged")
if doc["alloc_counting_active"] and doc["allocs_per_step"] != 0:
    sys.exit(f"FAIL: steady-state steps allocated ({doc['allocs_per_step']}/step)")
jobs, hc = doc["jobs"], doc["hardware_concurrency"]
speedup = doc["parallel_speedup"]
print(f"jobs={jobs} hardware_concurrency={hc} parallel_speedup={speedup}")
if hc > 1 and jobs > 1 and speedup < 1.2:
    print(f"WARN: parallel_speedup={speedup} despite {hc} cores ({jobs} jobs)")
intra, parts = doc["intra_run_speedup"], doc["partitions"]
print(f"partitions={parts} intra_run_speedup={intra}")
if hc >= 4 and intra < 1.5:
    sys.exit(f"FAIL: intra_run_speedup={intra} < 1.5 despite {hc} cores ({parts} partitions)")
if hc < 4 and intra < 1.0:
    print(f"WARN: intra_run_speedup={intra} on {hc} core(s) — expected ~1.0, re-measure on a multi-core machine")
import os
if os.path.exists("BENCH_runtime.json"):
    ref = json.load(open("BENCH_runtime.json")).get("sim_steps_per_sec", 0)
    cur = doc["sim_steps_per_sec"]
    if ref and cur < 0.5 * ref:
        print(f"WARN: sim_steps_per_sec={cur} is <50% of committed {ref} — re-measure on an idle machine")
EOF
else
  grep -q '"deterministic": true' "$json" \
    || { echo "FAIL: deterministic flag absent"; exit 1; }
  grep -q '"backend_invariant": true' "$json" \
    || { echo "FAIL: backend_invariant flag absent"; exit 1; }
fi

echo "bench smoke OK"
