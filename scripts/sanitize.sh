#!/usr/bin/env bash
# Sanitizer pass: rebuild under ASan+UBSan (-DMM_SANITIZE=ON) and run the
# runtime- and exec-focused tests — the code that switches stacks (fiber
# backend), parks threads (thread backend), and fans trials out across the
# worker pool. Wired into CTest under the "sanitize" label:
#     ctest -L sanitize
#
# The fiber backend participates in ASan's fake-stack bookkeeping through the
# __sanitizer_*_switch_fiber hooks (see src/runtime/fiber.cpp), so stack
# switching is fully instrumented, not suppressed.
#
# Env:
#   BUILD_DIR     sanitizer build tree (default: build-sanitize)
#   GTEST_FILTER  override the test filter (default: runtime/exec suites)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-sanitize}
FILTER=${GTEST_FILTER:-'Fiber.*:BackendDiff.*:TupleVec.*:SlabPool.*:AllocInvariant.*:SimRuntime.*:SimEnv.*:SimConfigValidate.*:Jobs.*:ParallelMap.*:TrialEngine.*:SweepTermination.*:ThreadRuntime.*:FaultEngine.*:FaultJson.*:ChaosCampaign.*:ChaosShrink.*:Explore.*:Dpor.*'}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMM_SANITIZE=ON
fi
cmake --build "$BUILD_DIR" -j --target mm_tests

# Leak checking needs ptrace, which containers often deny; the point here is
# stack/UB instrumentation, so default it off (overridable via ASAN_OPTIONS).
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

"$BUILD_DIR/tests/mm_tests" --gtest_filter="$FILTER" --gtest_brief=1

echo "sanitize OK"
