#!/usr/bin/env bash
# Sanitizer pass: rebuild under a sanitizer and run the runtime- and
# exec-focused tests — the code that switches stacks (fiber backend), parks
# threads (thread backend), fans trials out across the worker pool, and runs
# K logical partitions concurrently inside one simulation (partitioned
# SimRuntime). Wired into CTest under the "sanitize" / "tsan" labels:
#     ctest -L sanitize        # ASan+UBSan
#     ctest -L tsan            # ThreadSanitizer
#
# Modes (MM_SANITIZE env, mirroring the CMake cache var):
#   address (default)  ASan+UBSan in build-sanitize. The fiber backend
#                      participates in ASan's fake-stack bookkeeping through
#                      the __sanitizer_*_switch_fiber hooks (fiber.cpp), so
#                      stack switching is fully instrumented, not suppressed.
#   thread             TSan in build-tsan. Fibers register with the
#                      __tsan_*_fiber API (fiber.cpp), so the coroutine
#                      backend's stack switches keep TSan's shadow state
#                      coherent; the partitioned engine's clock/handoff
#                      protocol is checked for real data races.
#
# Env:
#   MM_SANITIZE   address (default) | thread
#   BUILD_DIR     sanitizer build tree (default: build-sanitize / build-tsan)
#   GTEST_FILTER  override the test filter (default: runtime/exec suites)
set -euo pipefail

cd "$(dirname "$0")/.."
MODE=${MM_SANITIZE:-address}
case "$MODE" in
  thread)
    BUILD_DIR=${BUILD_DIR:-build-tsan}
    # Runtime + concurrency surface only: TSan's ~10x slowdown makes the full
    # suite impractical, and the single-threaded analysis passes add nothing.
    FILTER=${GTEST_FILTER:-'Fiber.*:BackendDiff.*:SimRuntime.*:SimEnv.*:Jobs.*:ParallelMap.*:TrialEngine.*:ThreadRuntime.*:Partition*:Modes/PartitionDiff.*'}
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
    ;;
  address|ON|on)
    MODE=address
    BUILD_DIR=${BUILD_DIR:-build-sanitize}
    FILTER=${GTEST_FILTER:-'Fiber.*:BackendDiff.*:TupleVec.*:SlabPool.*:AllocInvariant.*:SimRuntime.*:SimEnv.*:SimConfigValidate.*:Jobs.*:ParallelMap.*:TrialEngine.*:SweepTermination.*:ThreadRuntime.*:FaultEngine.*:FaultJson.*:ChaosCampaign.*:ChaosShrink.*:ChaosBridge.*:Explore.*:FootprintClasses.*:Dpor.*:DporFaults.*:Partition*:Modes/PartitionDiff.*'}
    # Leak checking needs ptrace, which containers often deny; the point here
    # is stack/UB instrumentation, so default it off (overridable).
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
    ;;
  *)
    echo "unknown MM_SANITIZE mode: $MODE (want address or thread)" >&2
    exit 2
    ;;
esac

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DMM_SANITIZE=$MODE"
fi
cmake --build "$BUILD_DIR" -j --target mm_tests

"$BUILD_DIR/tests/mm_tests" --gtest_filter="$FILTER" --gtest_brief=1

echo "sanitize ($MODE) OK"
