#!/usr/bin/env bash
# Long-running safety soak: re-run the E17 randomized campaign with many
# base seeds. Any nonzero exit is a reproducible safety violation (the
# campaign prints its base seed).
#
#   scripts/soak.sh [rounds] [trials-per-cell]
set -euo pipefail
cd "$(dirname "$0")/.."

rounds="${1:-20}"
trials="${2:-120}"
bench="build/bench/bench_e17_campaign"

if [[ ! -x "$bench" ]]; then
  echo "build first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 2
fi

for ((i = 1; i <= rounds; ++i)); do
  seed=$((20180723 + i * 1000003))
  echo "=== soak round $i/$rounds (base seed $seed) ==="
  "$bench" "$seed" "$trials" | tail -n 3
done
echo "soak finished: $((rounds * trials * 2)) randomized adversarial runs, 0 violations"
