#!/usr/bin/env bash
# Chaos smoke: proves the fault-injection campaign loop hasn't bit-rotted.
#
# Builds (or reuses) the tools/chaos driver, runs a small seeded safety
# campaign (must find nothing), then a planted-termination campaign (the
# deliberately false invariant) and replays every minimized repro it wrote —
# the shrink → JSON → --replay round trip end to end. Wired into CTest under
# the "chaos" label:
#     ctest -L chaos
#
# Env:
#   BUILD_DIR   build tree to use (default: build; configured if missing)
#   MM_JOBS     trial-engine worker count (default: hardware concurrency)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j --target chaos

CHAOS="$BUILD_DIR/tools/chaos"
OUT="$BUILD_DIR/chaos-smoke"
rm -rf "$OUT"
mkdir -p "$OUT"

echo "== safety campaign (seed 11, 40 trials; any violation is a bug) =="
"$CHAOS" campaign --seed 11 --trials 40 --out "$OUT"

echo "== planted-termination campaign (seed 3, 60 trials) =="
# The termination oracle is deliberately false under arbitrary fault
# schedules; planted campaigns exit 0 with findings written as repro files.
"$CHAOS" campaign --seed 3 --trials 60 --assert-termination --out "$OUT"

repros=("$OUT"/chaos-repro-*.json)
if [ -e "${repros[0]}" ]; then
  echo "== replaying ${#repros[@]} minimized repro(s) =="
  "$CHAOS" replay "${repros[@]}"
else
  # Determinism makes this stable per seed: seed 3 does produce findings
  # today, so an empty directory means the generator or shrinker regressed.
  echo "FAIL: planted campaign produced no repro files"
  exit 1
fi

echo "chaos smoke OK"
