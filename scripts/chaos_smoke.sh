#!/usr/bin/env bash
# Chaos smoke: proves the fault-injection campaign loop hasn't bit-rotted.
#
# Builds (or reuses) the tools/chaos driver, runs a small seeded safety
# campaign (must find nothing), a Byzantine safety campaign (coherent b <= f
# cases; also must find nothing), then planted campaigns — the deliberately
# false termination invariant, crash-style and Byzantine-style — and replays
# every minimized repro they wrote: the shrink -> JSON -> --replay round trip
# end to end. Planted campaigns pass --expect-violations, since any campaign
# that records a violation now exits 1. Wired into CTest under the "chaos"
# label:
#     ctest -L chaos
#
# Env:
#   BUILD_DIR   build tree to use (default: build; configured if missing)
#   MM_JOBS     trial-engine worker count (default: hardware concurrency)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j --target chaos

CHAOS="$BUILD_DIR/tools/chaos"
OUT="$BUILD_DIR/chaos-smoke"
rm -rf "$OUT"
mkdir -p "$OUT"

echo "== safety campaign (seed 11, 40 trials; any violation is a bug) =="
"$CHAOS" campaign --seed 11 --trials 40 --out "$OUT"

echo "== byzantine safety campaign (seed 7, 40 trials; any violation is a bug) =="
"$CHAOS" campaign --seed 7 --trials 40 --byzantine --no-omega --out "$OUT"

echo "== planted-termination campaign (seed 3, 60 trials) =="
# The termination oracle is deliberately false under arbitrary fault
# schedules; the campaign must record findings (and write repro files).
mkdir -p "$OUT/crash" "$OUT/byz"
"$CHAOS" campaign --seed 3 --trials 60 --assert-termination \
  --expect-violations --out "$OUT/crash"

echo "== planted byzantine campaign (seed 5, 30 trials; b = f+1 silent) =="
"$CHAOS" campaign --seed 5 --trials 30 --byzantine --no-omega \
  --assert-termination --expect-violations --out "$OUT/byz"

repros=("$OUT"/*/chaos-repro-*.json)
if [ -e "${repros[0]}" ]; then
  echo "== replaying ${#repros[@]} minimized repro(s) =="
  "$CHAOS" replay "${repros[@]}"
else
  # Determinism makes this stable per seed: these seeds do produce findings
  # today, so an empty directory means the generator or shrinker regressed.
  echo "FAIL: planted campaigns produced no repro files"
  exit 1
fi

echo "chaos smoke OK"
