#!/usr/bin/env bash
# Explore smoke: proves the model checker hasn't bit-rotted.
#
# Builds (or reuses) the tools/check driver, then:
#   1. `check run all` — every clean instance must verify clean and exhaust,
#      every planted-bug instance must produce its violation;
#   2. `check diff all` — the differential oracle: naive DFS and DPOR must
#      reach the same verdict AND the same reachable final-state set on every
#      DFS-feasible instance, with DPOR using no more replays;
#   3. a frontier determinism spot check — the parallel frontier at 1 and 4
#      workers must report byte-identical results.
# Wired into CTest under the "explore" label:
#     ctest -L explore
#
# Env:
#   BUILD_DIR   build tree to use (default: build; configured if missing)
#   MM_JOBS     frontier worker count default (the spot check overrides it)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j --target check

CHECK="$BUILD_DIR/tools/check"

echo "== run all instances (DPOR; clean must exhaust, planted must trip) =="
"$CHECK" run all

echo "== differential: naive DFS vs DPOR on every DFS-feasible instance =="
"$CHECK" diff all

echo "== frontier determinism: hbo3-crash at 1 vs 4 workers =="
one=$("$CHECK" run hbo3-crash --frontier 3 --jobs 1)
four=$("$CHECK" run hbo3-crash --frontier 3 --jobs 4)
if [ "$one" != "$four" ]; then
  echo "FAIL: frontier results differ across worker counts"
  diff <(echo "$one") <(echo "$four") || true
  exit 1
fi
echo "$four"

echo "explore smoke OK"
