#!/usr/bin/env bash
# Explore smoke: proves the model checker hasn't bit-rotted.
#
# Builds (or reuses) the tools/check driver, then:
#   1. `check run all` — every clean instance must verify clean and exhaust,
#      every planted-bug instance must produce its violation. The corpus now
#      carries one fault-bearing instance per dependency class, so this leg
#      covers crash events (hbo3-anycrash, ac4/ac5, crashwin3), head-of-queue
#      drops (abd4-drop, abd4-drop2, dropval2) and transient partition
#      toggles (pingpart2, omega2-part);
#   2. `check diff all` — the differential oracle: naive DFS and DPOR must
#      reach the same verdict AND the same reachable final-state set on every
#      DFS-feasible instance, with DPOR using no more replays;
#   3. frontier determinism spot checks — the parallel frontier at 1 and 4
#      workers must report byte-identical results, on a crash instance and on
#      a partition-toggle instance;
#   4. `check replay` — the chaos bridge: a recorded chaos repro must
#      rediscover the same oracle exhaustively, and a clean repro must stay
#      clean across every fault placement the budget reaches.
# Wired into CTest under the "explore" label:
#     ctest -L explore
#
# Env:
#   BUILD_DIR   build tree to use (default: build; configured if missing)
#   MM_JOBS     frontier worker count default (the spot check overrides it)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j --target check

CHECK="$BUILD_DIR/tools/check"

echo "== run all instances (DPOR; clean must exhaust, planted must trip) =="
"$CHECK" run all

echo "== differential: naive DFS vs DPOR on every DFS-feasible instance =="
"$CHECK" diff all

echo "== frontier determinism: hbo3-crash at 1 vs 4 workers =="
one=$("$CHECK" run hbo3-crash --frontier 3 --jobs 1)
four=$("$CHECK" run hbo3-crash --frontier 3 --jobs 4)
if [ "$one" != "$four" ]; then
  echo "FAIL: frontier results differ across worker counts"
  diff <(echo "$one") <(echo "$four") || true
  exit 1
fi
echo "$four"

echo "== frontier determinism: pingpart2 (partition toggles) at 1 vs 4 workers =="
one=$("$CHECK" run pingpart2 --frontier 2 --jobs 1)
four=$("$CHECK" run pingpart2 --frontier 2 --jobs 4)
if [ "$one" != "$four" ]; then
  echo "FAIL: fault-bearing frontier results differ across worker counts"
  diff <(echo "$one") <(echo "$four") || true
  exit 1
fi
echo "$four"

echo "== chaos bridge: replay a recorded repro and a clean repro =="
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# A shrunk chaos repro claiming a termination violation: HBO consensus on an
# edgeless n=3 graph with two explicit crashes. The bridge discards the
# sampled trigger steps and lets the explorer place both crash events
# anywhere; the same oracle must be rediscovered exhaustively.
cat > "$TMP/violation.json" <<'EOF'
{
  "format": "mm-chaos-repro",
  "version": 2,
  "case": {
    "kind": "consensus",
    "seed": 42,
    "n": 3,
    "topology": "edgeless",
    "algo": "hbo",
    "f": 0,
    "crash_window": 2000,
    "max_rounds": 4000,
    "max_delay": 8,
    "budget": 120000,
    "rules": [
      {"trigger": "at_step", "who": null, "count": 10, "action": "crash",
       "target": 1, "mask": 0, "duration": 0, "drop_prob": 0.0,
       "dup_prob": 0.0, "extra_delay": 0, "byz_behaviors": 0,
       "byz_silence_mask": 0},
      {"trigger": "at_step", "who": null, "count": 20, "action": "crash",
       "target": 2, "mask": 0, "duration": 0, "drop_prob": 0.0,
       "dup_prob": 0.0, "extra_delay": 0, "byz_behaviors": 0,
       "byz_silence_mask": 0}
    ],
    "oracles": ["termination"]
  },
  "violation": {
    "oracle": "termination",
    "detail": "p0 never decided within the step budget"
  }
}
EOF

# The same envelope with no recorded violation: a transient partition window
# over a complete n=2 graph. Budget-capped: every placement the cap reaches
# must be clean (full exhaustion of live HBO runs is the corpus's job).
cat > "$TMP/clean.json" <<'EOF'
{
  "format": "mm-chaos-repro",
  "version": 2,
  "case": {
    "kind": "consensus",
    "seed": 42,
    "n": 2,
    "topology": "complete",
    "algo": "hbo",
    "f": 0,
    "crash_window": 2000,
    "max_rounds": 4000,
    "max_delay": 8,
    "budget": 120000,
    "rules": [
      {"trigger": "at_step", "who": null, "count": 25, "action": "partition",
       "target": null, "mask": 1, "duration": 200, "drop_prob": 0.0,
       "dup_prob": 0.0, "extra_delay": 0, "byz_behaviors": 0,
       "byz_silence_mask": 0},
      {"trigger": "at_step", "who": null, "count": 300,
       "action": "heal_partition", "target": null, "mask": 0, "duration": 0,
       "drop_prob": 0.0, "dup_prob": 0.0, "extra_delay": 0,
       "byz_behaviors": 0, "byz_silence_mask": 0}
    ],
    "oracles": ["agreement", "validity"]
  }
}
EOF

"$CHECK" replay "$TMP/violation.json"
"$CHECK" replay "$TMP/clean.json" --max-runs 2000

echo "explore smoke OK"
