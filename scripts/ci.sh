#!/usr/bin/env bash
# The one CI entry point: configure, build, and run every test tier in
# sequence, then print a pass/fail summary table.
#
# Stages (each one is a ctest label selection over the same build tree):
#   build      configure (RelWithDebInfo) + compile everything
#   unit       the gtest suite (everything without a stage label) — tier 1
#   smoke      bench smoke: trimmed microbench + engine bench + perf record
#   chaos      fault-injection campaigns: safety, Byzantine, planted+replay
#   explore    model checker: DFS/DPOR differential + frontier determinism
#   tsan       ThreadSanitizer rebuild of the runtime/exec surface (optional:
#              arm with MM_CI_TSAN=1; skipped by default — it is a full
#              side-tree rebuild and the slowest stage by far)
#
# Any required stage failing fails the script (exit 1), but later stages
# still run so one red stage doesn't hide another. The summary table at the
# end is the CI verdict.
#
# Env:
#   BUILD_DIR    build tree to use (default: build; configured if missing)
#   MM_CI_TSAN   1 = also run the tsan stage (default: skip)
#   MM_JOBS      trial-engine worker count (default: hardware concurrency)
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

STAGES=()
RESULTS=()
TIMES=()

run_stage() {
  local name=$1
  shift
  local t0 t1 rc
  echo
  echo "=== stage: $name ==="
  t0=$(date +%s)
  "$@"
  rc=$?
  t1=$(date +%s)
  STAGES+=("$name")
  TIMES+=($((t1 - t0)))
  if [ "$rc" -eq 0 ]; then RESULTS+=("pass"); else RESULTS+=("FAIL"); fi
  return 0
}

build_stage() {
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo || return 1
  fi
  cmake --build "$BUILD_DIR" -j
}

ctest_label() {
  # -L runs one stage's label; unit excludes all stage labels instead.
  # -j needs an explicit value: a bare `-j` would swallow the -L/-LE flag.
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)" "$@")
}

run_stage build build_stage
run_stage unit ctest_label -LE 'smoke|chaos|explore|sanitize|tsan'
run_stage smoke ctest_label -L smoke
run_stage chaos ctest_label -L chaos
run_stage explore ctest_label -L explore
if [ "${MM_CI_TSAN:-0}" = "1" ]; then
  # The label-registered test is DISABLED unless configured with
  # -DMM_SANITIZE_TEST=ON, so invoke the script directly.
  run_stage tsan env MM_SANITIZE=thread bash scripts/sanitize.sh
else
  STAGES+=("tsan")
  RESULTS+=("skip")
  TIMES+=(0)
fi

echo
echo "== CI summary =="
printf '| %-8s | %-6s | %8s |\n' stage result "sec"
printf '|----------|--------|----------|\n'
failed=0
for i in "${!STAGES[@]}"; do
  printf '| %-8s | %-6s | %8s |\n' "${STAGES[$i]}" "${RESULTS[$i]}" "${TIMES[$i]}"
  [ "${RESULTS[$i]}" = "FAIL" ] && failed=1
done
if [ "$failed" -ne 0 ]; then
  echo "CI: FAIL"
  exit 1
fi
echo "CI: OK"
